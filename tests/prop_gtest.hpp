// gtest glue for testkit properties: run a registry property under the env
// knobs (SCAPEGOAT_PROP_ITERS / _SEED / _CORPUS) and report through gtest.
// SCAPEGOAT_PROP_ITERS=0 maps to a clean GTEST_SKIP so sanitizer runs can
// exclude the generative suites without failing them.

#pragma once

#include <gtest/gtest.h>

#include "testkit/properties.hpp"

#define SCAPEGOAT_RUN_PROPERTY(name_literal)                         \
  do {                                                               \
    const ::scapegoat::testkit::PropertyOutcome prop_outcome_ =      \
        ::scapegoat::testkit::check_registry_property(name_literal); \
    if (prop_outcome_.skipped)                                       \
      GTEST_SKIP() << prop_outcome_.report();                        \
    EXPECT_TRUE(prop_outcome_.passed) << prop_outcome_.report();     \
  } while (false)
