// Tests for the CLI argument parser.

#include "util/args.hpp"

#include <gtest/gtest.h>

namespace scapegoat {
namespace {

ArgParser parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, CommandAndFlags) {
  ArgParser a = parse({"attack", "--seed", "42", "--csv"});
  ASSERT_TRUE(a.command().has_value());
  EXPECT_EQ(*a.command(), "attack");
  EXPECT_EQ(a.get_int("seed", 0), 42);
  EXPECT_TRUE(a.get_bool("csv"));
  EXPECT_FALSE(a.get_bool("quiet"));
  EXPECT_TRUE(a.errors().empty());
  EXPECT_TRUE(a.unused().empty());
}

TEST(Args, EqualsSyntax) {
  ArgParser a = parse({"topo", "--topology=wireless", "--alpha=12.5"});
  EXPECT_EQ(a.get_string("topology"), "wireless");
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 0.0), 12.5);
}

TEST(Args, FallbacksWhenAbsent) {
  ArgParser a = parse({"topo"});
  EXPECT_EQ(a.get_string("topology", "fig1"), "fig1");
  EXPECT_EQ(a.get_int("seed", 7), 7);
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 200.0), 200.0);
  EXPECT_TRUE(a.get_int_list("attackers").empty());
}

TEST(Args, IntList) {
  ArgParser a = parse({"attack", "--attackers", "3,17,42"});
  EXPECT_EQ(a.get_int_list("attackers"), (std::vector<long>{3, 17, 42}));
}

TEST(Args, ParseErrorsAreRecorded) {
  ArgParser a = parse({"attack", "--seed", "abc"});
  EXPECT_EQ(a.get_int("seed", 5), 5);
  ASSERT_EQ(a.errors().size(), 1u);
  ArgParser b = parse({"attack", "--attackers", "1,x"});
  b.get_int_list("attackers");
  EXPECT_FALSE(b.errors().empty());
}

TEST(Args, ExtraPositionalIsError) {
  ArgParser a = parse({"attack", "extra"});
  EXPECT_FALSE(a.errors().empty());
}

TEST(Args, UnusedFlagsReported) {
  ArgParser a = parse({"attack", "--seed", "1", "--typo", "x"});
  a.get_int("seed", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, BareFlagFollowedByFlag) {
  ArgParser a = parse({"detect", "--csv", "--seed", "9"});
  EXPECT_TRUE(a.get_bool("csv"));
  EXPECT_EQ(a.get_int("seed", 0), 9);
}

TEST(Args, NoCommand) {
  ArgParser a = parse({"--seed", "1"});
  EXPECT_FALSE(a.command().has_value());
}

TEST(Args, ThreadsAbsentMeansAuto) {
  ArgParser a = parse({"attack"});
  EXPECT_EQ(a.get_threads(), 0u);
  EXPECT_TRUE(a.errors().empty());
}

TEST(Args, ThreadsAcceptsPositive) {
  ArgParser a = parse({"attack", "--threads", "4"});
  EXPECT_EQ(a.get_threads(), 4u);
  EXPECT_TRUE(a.errors().empty());
}

TEST(Args, ThreadsRejectsExplicitZero) {
  ArgParser a = parse({"attack", "--threads", "0"});
  EXPECT_EQ(a.get_threads(), 0u);  // still safe to feed downstream
  EXPECT_FALSE(a.errors().empty());
}

TEST(Args, ThreadsRejectsNegative) {
  ArgParser a = parse({"attack", "--threads=-2"});
  EXPECT_EQ(a.get_threads(), 0u);
  EXPECT_FALSE(a.errors().empty());
}

TEST(Args, ThreadsRejectsGarbage) {
  ArgParser a = parse({"attack", "--threads", "lots"});
  EXPECT_EQ(a.get_threads(), 0u);
  EXPECT_FALSE(a.errors().empty());
}

TEST(Args, IntOverflowIsRangeError) {
  ArgParser a = parse({"attack", "--seed", "999999999999999999999999"});
  EXPECT_EQ(a.get_int("seed", 3), 3);
  ASSERT_EQ(a.errors().size(), 1u);
  EXPECT_NE(a.errors()[0].find("out of range"), std::string::npos);
}

TEST(Args, DoubleOverflowIsRangeError) {
  ArgParser a = parse({"attack", "--alpha", "1e999"});
  EXPECT_DOUBLE_EQ(a.get_double("alpha", 200.0), 200.0);
  ASSERT_EQ(a.errors().size(), 1u);
  EXPECT_NE(a.errors()[0].find("out of range"), std::string::npos);
}

TEST(Args, IntListOverflowIsError) {
  ArgParser a = parse({"attack", "--attackers", "1,99999999999999999999"});
  a.get_int_list("attackers");
  EXPECT_FALSE(a.errors().empty());
}

}  // namespace
}  // namespace scapegoat
