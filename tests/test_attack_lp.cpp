// Unit tests for the shared attack-LP layer (solve_attack_lp,
// solve_consistent_attack_lp, max_estimate_push) — below the strategy level.

#include "attack/attack_lp.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/scenario.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class AttackLpTest : public ::testing::Test {
 protected:
  AttackLpTest()
      : rng_(121), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  AttackContext ctx() { return scenario_.context(net_.attackers); }

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(AttackLpTest, NoBandsMaximizesPureDamage) {
  // Without state constraints, the optimum saturates the cap on every
  // attacker-present path (22 of 23).
  AttackContext c = ctx();
  const AttackResult r = solve_attack_lp(c, {}, {});
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.damage, 22 * c.per_path_cap, 1e-6);
  EXPECT_NEAR(r.m[16], 0.0, 1e-12);  // path 17 pinned to zero
}

TEST_F(AttackLpTest, ConstantBandViolationIsInfeasibleImmediately) {
  // A band on a link the attacker cannot influence at all — but since the
  // Fig. 1 attackers influence everything, build the check by demanding the
  // impossible: estimate of link 1 below its (smaller) true value while the
  // attacker may only ADD delay... the LP itself must figure that out.
  AttackContext c = ctx();
  std::vector<LinkBand> bands{{0, -kInf, c.x_true[0] - 5.0}};
  // m ⪰ 0 can only push estimates around, and the pseudo-inverse has
  // negative entries, so this may or may not be feasible a priori; what we
  // assert is internal consistency: if feasible, the band truly holds.
  const AttackResult r = solve_attack_lp(c, bands, {});
  if (r.success) {
    EXPECT_LE(r.x_estimated[0], c.x_true[0] - 5.0 + 1e-6);
  } else {
    EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
  }
}

TEST_F(AttackLpTest, BandsAreRespectedAtTheOptimum) {
  AttackContext c = ctx();
  std::vector<LinkBand> bands{
      {0, 400.0, 600.0},   // link 1 estimate confined to a window
      {8, -kInf, 150.0},   // link 9 kept low
  };
  const AttackResult r = solve_attack_lp(c, bands, {0});
  ASSERT_TRUE(r.success);
  EXPECT_GE(r.x_estimated[0], 400.0 - 1e-6);
  EXPECT_LE(r.x_estimated[0], 600.0 + 1e-6);
  EXPECT_LE(r.x_estimated[8], 150.0 + 1e-6);
  EXPECT_EQ(r.victims, (std::vector<LinkId>{0}));
}

TEST_F(AttackLpTest, MaxEstimatePushBoundsTheLp) {
  // The relaxation bound must dominate anything the LP achieves.
  AttackContext c = ctx();
  for (LinkId l : {LinkId{0}, LinkId{8}, LinkId{9}}) {
    const double bound = max_estimate_push(c, l);
    std::vector<LinkBand> bands{{l, bound + 1.0, kInf}};
    const AttackResult r = solve_attack_lp(c, bands, {l});
    EXPECT_FALSE(r.success) << "link " << l << " exceeded its push bound";
  }
}

TEST_F(AttackLpTest, MaxEstimatePushIsAchievableWithoutOtherConstraints) {
  // Pushing a single link with no other bands should get exactly to the
  // bound (set every positive-coefficient path to the cap).
  AttackContext c = ctx();
  const LinkId l = 0;
  const double bound = max_estimate_push(c, l);
  std::vector<LinkBand> bands{{l, bound - 1e-6, kInf}};
  const AttackResult r = solve_attack_lp(c, bands, {l});
  ASSERT_TRUE(r.success);
  EXPECT_NEAR(r.x_estimated[l], bound, 1e-5);
}

TEST_F(AttackLpTest, ConsistentLpKeepsResidualZero) {
  AttackContext c = ctx();
  std::vector<LinkBand> bands;
  for (LinkId l : c.controlled_links())
    bands.push_back({l, -kInf, c.thresholds.lower - 1.0});
  bands.push_back({0, c.thresholds.upper + 1.0, kInf});
  const AttackResult r = solve_consistent_attack_lp(c, bands, {0});
  ASSERT_TRUE(r.success);
  const Vector residual = r.y_observed - c.estimator->r() * r.x_estimated;
  EXPECT_LT(residual.norm1(), 1e-5);
  EXPECT_TRUE(satisfies_constraint1(c, r.m));
  for (double mi : r.m) EXPECT_LE(mi, c.per_path_cap + 1e-6);
}

TEST_F(AttackLpTest, ConsistentLpRejectsImpossibleBands) {
  AttackContext c = ctx();
  std::vector<LinkBand> bands{{0, 500.0, 400.0}};  // empty interval
  const AttackResult r = solve_consistent_attack_lp(c, bands, {0});
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST_F(AttackLpTest, EmptyAttackerSetOnlySatisfiesTrivialBands) {
  AttackContext c = scenario_.context({});
  // Trivial band already satisfied by the truth → success with zero damage.
  std::vector<LinkBand> ok{{0, -kInf, c.thresholds.lower - 1.0}};
  const AttackResult r_ok = solve_attack_lp(c, ok, {});
  ASSERT_TRUE(r_ok.success);
  EXPECT_NEAR(r_ok.damage, 0.0, 1e-9);
  // Unsatisfiable band → infeasible.
  std::vector<LinkBand> bad{{0, c.thresholds.upper + 1.0, kInf}};
  EXPECT_FALSE(solve_attack_lp(c, bad, {}).success);
}

}  // namespace
}  // namespace scapegoat
