// Second parameterized property battery: strategy-level invariants on
// random topologies (complementing test_properties.cpp's theorem checks).
// All randomness flows through a testkit choice-tape Source
// (src/testkit/gen.hpp) — the former bespoke Rng/erdos_renyi helper is gone.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "attack/chosen_victim.hpp"
#include "attack/max_damage.hpp"
#include "attack/naive_attack.hpp"
#include "attack/obfuscation.hpp"
#include "core/scenario.hpp"
#include "detect/localize.hpp"
#include "testkit/gen.hpp"

namespace scapegoat {
namespace {

// ER family all five invariants run on.
std::optional<Scenario> gen_instance(testkit::Source& src) {
  return testkit::gen_er_scenario(src, 18, 0.25);
}

class StrategyInvariants : public ::testing::TestWithParam<int> {};

TEST_P(StrategyInvariants, ObfuscationOutputsAreInBand) {
  testkit::Source src(static_cast<std::uint64_t>(5000 + GetParam()));
  auto sc = gen_instance(src);
  ASSERT_TRUE(sc.has_value());
  for (int trial = 0; trial < 6; ++trial) {
    testkit::gen_resample_metrics(src, *sc);
    const auto att = src.distinct_indices(18, 1 + src.index(2));
    AttackContext ctx =
        sc->context(std::vector<NodeId>(att.begin(), att.end()));
    ObfuscationOptions opt;
    opt.min_victims = 3;
    const AttackResult r = obfuscation_attack(ctx, opt);
    if (!r.success) continue;
    EXPECT_GE(r.victims.size(), 3u);
    EXPECT_TRUE(satisfies_constraint1(ctx, r.m));
    for (LinkId l : ctx.controlled_links())
      EXPECT_EQ(r.states[l], LinkState::kUncertain);
    for (LinkId v : r.victims)
      EXPECT_EQ(r.states[v], LinkState::kUncertain);
  }
}

TEST_P(StrategyInvariants, MaxDamageDominatesSampledSingles) {
  testkit::Source src(static_cast<std::uint64_t>(6000 + GetParam()));
  auto sc = gen_instance(src);
  ASSERT_TRUE(sc.has_value());
  const auto att = src.distinct_indices(18, 2);
  AttackContext ctx =
      sc->context(std::vector<NodeId>(att.begin(), att.end()));
  const MaxDamageResult md = max_damage_attack(ctx);
  if (!md.best.success) return;  // nothing feasible for this placement
  const auto lm = ctx.controlled_links();
  for (LinkId v = 0; v < sc->graph().num_links(); ++v) {
    if (std::find(lm.begin(), lm.end(), v) != lm.end()) continue;
    const AttackResult single = chosen_victim_attack(ctx, {v});
    if (single.success)
      EXPECT_GE(md.best.damage + 1e-6, single.damage) << "victim " << v;
  }
}

TEST_P(StrategyInvariants, ConsistentSuccessesHaveZeroResidual) {
  testkit::Source src(static_cast<std::uint64_t>(7000 + GetParam()));
  auto sc = gen_instance(src);
  ASSERT_TRUE(sc.has_value());
  for (int trial = 0; trial < 10; ++trial) {
    testkit::gen_resample_metrics(src, *sc);
    const auto att = src.distinct_indices(18, 3);
    AttackContext ctx =
        sc->context(std::vector<NodeId>(att.begin(), att.end()));
    const auto lm = ctx.controlled_links();
    const LinkId victim = src.index(sc->graph().num_links());
    if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
    const AttackResult r =
        chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    if (!r.success) continue;
    const Vector resid =
        r.y_observed - ctx.estimator->r() * r.x_estimated;
    EXPECT_LT(resid.norm1(), 1e-5);
  }
}

TEST_P(StrategyInvariants, NaiveAttackNeverHidesTheWorstLink) {
  testkit::Source src(static_cast<std::uint64_t>(8000 + GetParam()));
  auto sc = gen_instance(src);
  ASSERT_TRUE(sc.has_value());
  const NodeId attacker = src.index(18);
  AttackContext ctx = sc->context({attacker});
  const AttackResult r = naive_delay_attack(ctx, 900.0);
  if (!r.success) return;  // attacker on no path
  // The single worst estimated link must be attacker-incident: the blame
  // lands on the culprit, not a scapegoat.
  LinkId worst = 0;
  for (LinkId l = 1; l < r.x_estimated.size(); ++l)
    if (r.x_estimated[l] > r.x_estimated[worst]) worst = l;
  const auto lm = ctx.controlled_links();
  EXPECT_TRUE(std::find(lm.begin(), lm.end(), worst) != lm.end());
}

TEST_P(StrategyInvariants, LocalizationSoundnessOnMinorityManipulation) {
  // On arbitrary topologies the tampered rows are not always the UNIQUE
  // consistent explanation (that exactness is pinned down on Fig. 1 in
  // test_localize.cpp); what must always hold is soundness: honest systems
  // are never flagged, flagged sets respect the budget, and a clean verdict
  // really is consistent on the surviving rows.
  testkit::Source src(static_cast<std::uint64_t>(8500 + GetParam()));
  auto sc = gen_instance(src);
  ASSERT_TRUE(sc.has_value());

  // Honest run never flags anything.
  const LocalizationResult honest =
      localize_manipulation(sc->estimator(), sc->clean_measurements());
  EXPECT_FALSE(honest.manipulated);
  EXPECT_TRUE(honest.suspicious_paths.empty());

  // Tamper 2 random paths hard (amounts far above α).
  Vector y = sc->clean_measurements();
  const auto tampered =
      src.distinct_indices(sc->estimator().num_paths(), 2);
  for (std::size_t idx : tampered)
    y[idx] += 1200.0 + src.grid_nonneg(25.0, 16);

  LocalizationOptions opt;
  opt.max_removals = 6;
  const LocalizationResult loc =
      localize_manipulation(sc->estimator(), y, opt);
  EXPECT_LE(loc.suspicious_paths.size(), opt.max_removals);
  for (std::size_t idx : loc.suspicious_paths)
    EXPECT_LT(idx, sc->estimator().num_paths());
  if (loc.clean && loc.manipulated) {
    // The surviving rows are consistent with the cleaned estimate.
    const Matrix& r = sc->estimator().r();
    double resid = 0.0;
    for (std::size_t i = 0; i < r.rows(); ++i) {
      if (std::find(loc.suspicious_paths.begin(), loc.suspicious_paths.end(),
                    i) != loc.suspicious_paths.end())
        continue;
      double row = y[i];
      for (std::size_t j = 0; j < r.cols(); ++j)
        row -= r(i, j) * loc.x_cleaned[j];
      resid += std::abs(row);
    }
    EXPECT_LE(resid, opt.alpha + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyInvariants, ::testing::Range(0, 10));

}  // namespace
}  // namespace scapegoat
