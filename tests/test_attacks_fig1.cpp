// End-to-end attack tests on the paper's Fig. 1 network: the §V-B
// experiments (Figs. 4-6) plus Theorem 1/3 behaviour.

#include <gtest/gtest.h>

#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/max_damage.hpp"
#include "attack/obfuscation.hpp"
#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class Fig1Attacks : public ::testing::Test {
 protected:
  Fig1Attacks() : rng_(4), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(Fig1Attacks, PerfectCutVictimAlwaysFeasible) {
  // Link 1 is perfectly cut by {B, C}: Theorem 1 ⇒ the attack must succeed.
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_chosen_victim_result(ctx, r));
  EXPECT_GT(r.damage, 0.0);
  EXPECT_EQ(r.states[0], LinkState::kAbnormal);
  for (LinkId l : ctx.controlled_links())
    EXPECT_EQ(r.states[l], LinkState::kNormal);
}

TEST_F(Fig1Attacks, Fig4ChosenVictimLink10Succeeds) {
  // Link 10 is NOT perfectly cut, yet §V-B finds the attack feasible.
  AttackContext ctx = scenario_.context(net_.attackers);
  EXPECT_FALSE(is_perfect_cut(net_.paths, net_.attackers, {9}));
  const AttackResult r = chosen_victim_attack(ctx, {9});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_chosen_victim_result(ctx, r));
  EXPECT_EQ(r.states[9], LinkState::kAbnormal);
  // Paper: estimated delay of link 10 exceeds the 800 ms threshold.
  EXPECT_GT(r.x_estimated[9], 800.0);
}

TEST_F(Fig1Attacks, ManipulationRespectsConstraint1AndCap) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {9});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(satisfies_constraint1(ctx, r.m));
  // Path 17 carries no attacker: its entry must be zero.
  EXPECT_NEAR(r.m[16], 0.0, 1e-9);
  for (double mi : r.m) {
    EXPECT_GE(mi, -1e-9);
    EXPECT_LE(mi, ctx.per_path_cap + 1e-6);
  }
}

TEST_F(Fig1Attacks, VictimInControlledSetIsRejected) {
  AttackContext ctx = scenario_.context(net_.attackers);
  // Link 5 (paper index, LinkId 4) touches B: Eq. 7 forbids it as victim.
  const AttackResult r = chosen_victim_attack(ctx, {4});
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST_F(Fig1Attacks, Fig5MaxDamageFindsVictims) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const MaxDamageResult md = max_damage_attack(ctx);
  ASSERT_TRUE(md.best.success);
  EXPECT_FALSE(md.best.victims.empty());
  EXPECT_FALSE(md.single_victim_damages.empty());
  // Max-damage dominates every single chosen-victim attack (paper: "highest
  // in all chosen-victim attacks").
  for (const auto& [v, d] : md.single_victim_damages)
    EXPECT_GE(md.best.damage + 1e-6, d);
  // Victims classify abnormal, attacker links normal.
  for (LinkId v : md.best.victims)
    EXPECT_EQ(md.best.states[v], LinkState::kAbnormal);
  for (LinkId l : ctx.controlled_links())
    EXPECT_EQ(md.best.states[l], LinkState::kNormal);
  // Only links 1, 9, 10 (ids 0, 8, 9) are outside the attackers' control, so
  // victims must come from that set.
  for (LinkId v : md.best.victims) {
    EXPECT_TRUE(v == 0 || v == 8 || v == 9);
  }
}

TEST_F(Fig1Attacks, Fig6ObfuscationPutsAllLinksInBand) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;  // only 3 non-controlled links exist here
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  EXPECT_GT(r.damage, 0.0);
  // Every link in L_o = L_m ∪ L_s is inside the uncertain band.
  for (LinkId l : ctx.controlled_links())
    EXPECT_EQ(r.states[l], LinkState::kUncertain);
  for (LinkId v : r.victims)
    EXPECT_EQ(r.states[v], LinkState::kUncertain);
  EXPECT_TRUE(satisfies_constraint1(ctx, r.m));
}

TEST_F(Fig1Attacks, ConsistentModeIsUndetectableOnPerfectCut) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r =
      chosen_victim_attack(ctx, {0}, ManipulationMode::kConsistent);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states[0], LinkState::kAbnormal);
  // Theorem 3: under a perfect cut the attacker stays consistent with the
  // linear model — the Eq. 23 detector cannot fire.
  const DetectionOutcome d =
      detect_scapegoating(scenario_.estimator(), r.y_observed);
  EXPECT_FALSE(d.detected);
  EXPECT_LT(d.residual_norm1, 1.0);
}

TEST_F(Fig1Attacks, ConsistentModeInfeasibleOnImperfectCut) {
  AttackContext ctx = scenario_.context(net_.attackers);
  // Link 10 is imperfectly cut: no consistent manipulation can scapegoat it.
  const AttackResult r =
      chosen_victim_attack(ctx, {9}, ManipulationMode::kConsistent);
  EXPECT_FALSE(r.success);
}

TEST_F(Fig1Attacks, UnrestrictedImperfectCutAttackIsDetected) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {9});
  ASSERT_TRUE(r.success);
  const DetectionOutcome d =
      detect_scapegoating(scenario_.estimator(), r.y_observed);
  EXPECT_TRUE(d.detected);
  EXPECT_GT(d.residual_norm1, 200.0);
}

TEST_F(Fig1Attacks, CleanMeasurementsRaiseNoAlarm) {
  const DetectionOutcome d = detect_scapegoating(
      scenario_.estimator(), scenario_.clean_measurements());
  EXPECT_FALSE(d.detected);
  EXPECT_NEAR(d.residual_norm1, 0.0, 1e-6);
}

TEST_F(Fig1Attacks, DamageIsCappedByAttackerPathBudget) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(r.success);
  // 22 attacker-present paths, each capped at 2000 ms.
  EXPECT_LE(r.damage, 22 * ctx.per_path_cap + 1e-6);
}

TEST_F(Fig1Attacks, TighterCapReducesOrKeepsDamage) {
  AttackContext loose = scenario_.context(net_.attackers);
  AttackContext tight = scenario_.context(net_.attackers);
  tight.per_path_cap = 1000.0;
  const AttackResult rl = chosen_victim_attack(loose, {0});
  const AttackResult rt = chosen_victim_attack(tight, {0});
  ASSERT_TRUE(rl.success);
  ASSERT_TRUE(rt.success);
  EXPECT_LE(rt.damage, rl.damage + 1e-6);
}

}  // namespace
}  // namespace scapegoat
