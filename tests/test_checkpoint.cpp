// Crash-safety tests: the CRC-framed checkpoint journal, watchdog budgets,
// trial quarantine, and the kill/resume determinism contract of the
// experiment runners.
//
// The expensive end-to-end cases run the Fig. 7/Fig. 9/fault-sweep runners
// at tiny sizes and assert that any interleaving of interrupted sessions —
// new-trial quotas, an in-process shutdown request, a SIGKILL'd child
// process, a torn journal tail — resumes to a series bitwise identical to
// an uninterrupted run, at every thread count tried.

#include "robust/checkpoint.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/fault_experiment.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "robust/retry.hpp"
#include "robust/watchdog.hpp"
#include "util/atomic_file.hpp"

// fork() + worker threads is undefined under TSan; the kill/resume test is
// compiled out there (the quota/shutdown tests cover the same resume logic
// in-process).
#if defined(__SANITIZE_THREAD__)
#define SCAPEGOAT_NO_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCAPEGOAT_NO_FORK_TESTS 1
#endif
#endif

namespace scapegoat {
namespace {

using robust::Budget;
using robust::CheckpointJournal;
using robust::ConfigHasher;
using robust::QuarantineRecord;
using robust::ResilienceOptions;
using robust::TrialRecord;
using robust::Watchdog;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "ckpt_test_" + name;
}

void remove_journal(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string out((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return out;
}

void dump(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// ------------------------------------------------------------ primitives --

TEST(Crc32, KnownAnswers) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(robust::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(robust::crc32(""), 0u);
  EXPECT_NE(robust::crc32("a"), robust::crc32("b"));
}

TEST(BitCodecs, DoubleRoundTripIsBitwise) {
  const double values[] = {0.0,
                           -0.0,
                           1.5,
                           -1e300,
                           5e-324,  // smallest denormal
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()};
  for (const double v : values) {
    const std::string hex = robust::encode_double_bits(v);
    EXPECT_EQ(hex.size(), 16u);
    const auto back = robust::decode_double_bits(hex);
    ASSERT_TRUE(back.has_value()) << hex;
    EXPECT_TRUE(bits_equal(v, *back)) << hex;
  }
  EXPECT_FALSE(robust::decode_double_bits("").has_value());
  EXPECT_FALSE(robust::decode_double_bits("123").has_value());
  EXPECT_FALSE(robust::decode_double_bits("zzzzzzzzzzzzzzzz").has_value());
}

TEST(BitCodecs, U64HexRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 0xdeadbeefull, ~0ull, 0x8000000000000000ull}) {
    EXPECT_EQ(robust::decode_u64_hex(robust::encode_u64_hex(v)), v);
  }
  EXPECT_FALSE(robust::decode_u64_hex("").has_value());
  EXPECT_FALSE(robust::decode_u64_hex("12345678901234567").has_value());
  EXPECT_FALSE(robust::decode_u64_hex("xy").has_value());
}

TEST(ConfigHasherTest, OrderAndTypeSensitive) {
  const auto h = [](auto&&... parts) {
    ConfigHasher hasher;
    (hasher.mix(parts), ...);
    return hasher.hash();
  };
  EXPECT_EQ(h(std::uint64_t{1}, std::uint64_t{2}),
            h(std::uint64_t{1}, std::uint64_t{2}));
  EXPECT_NE(h(std::uint64_t{1}, std::uint64_t{2}),
            h(std::uint64_t{2}, std::uint64_t{1}));
  EXPECT_NE(h(std::string_view{"ab"}), h(std::string_view{"ba"}));
  // "a" then "b" must differ from "ab" then "" (length prefixing).
  EXPECT_NE(h(std::string_view{"a"}, std::string_view{"b"}),
            h(std::string_view{"ab"}, std::string_view{""}));
  EXPECT_NE(h(1.0), h(-1.0));
}

// --------------------------------------------------------- journal format --

TEST(JournalIo, MissingFileIsEmptyJournal) {
  const auto loaded = robust::read_journal(tmp_path("does_not_exist.ckpt"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->trials.empty());
  EXPECT_EQ(loaded->dropped_lines, 0u);
  EXPECT_EQ(loaded->valid_bytes, 0u);
}

TEST(JournalIo, RoundTripsTrialAndQuarantineRecords) {
  const std::string path = tmp_path("roundtrip.ckpt");
  TrialRecord t;
  t.family = "trial";
  t.index = 42;
  t.seed = 0x1234;
  t.payload = "7:3:1 with \"quotes\"\nand newline\tand tab";
  QuarantineRecord q;
  q.family = "perfect";
  q.index = 7;
  q.seed = 99;
  q.code = robust::ErrorCode::kIterationLimit;
  q.message = "trial watchdog budget expired";
  q.attempts = 2;
  dump(path, robust::encode_journal_line(t) + robust::encode_journal_line(q));

  const auto loaded = robust::read_journal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dropped_lines, 0u);
  ASSERT_EQ(loaded->trials.size(), 1u);
  const TrialRecord& rt = loaded->trials.begin()->second;
  EXPECT_EQ(rt.family, t.family);
  EXPECT_EQ(rt.index, t.index);
  EXPECT_EQ(rt.seed, t.seed);
  EXPECT_EQ(rt.payload, t.payload);
  ASSERT_EQ(loaded->quarantined.size(), 1u);
  const QuarantineRecord& rq = loaded->quarantined.begin()->second;
  EXPECT_EQ(rq.family, q.family);
  EXPECT_EQ(rq.index, q.index);
  EXPECT_EQ(rq.code, q.code);
  EXPECT_EQ(rq.message, q.message);
  EXPECT_EQ(rq.attempts, q.attempts);
  std::remove(path.c_str());
}

TEST(JournalIo, TornTailIsDroppedAndValidPrefixReported) {
  const std::string path = tmp_path("torn.ckpt");
  TrialRecord t;
  t.family = "trial";
  t.payload = "1:2:3";
  t.index = 0;
  std::string good;
  good += robust::encode_journal_line(t);
  t.index = 1;
  good += robust::encode_journal_line(t);
  t.index = 2;
  const std::string third = robust::encode_journal_line(t);
  // Simulate a crash mid-append: the third line is cut short, no newline.
  dump(path, good + third.substr(0, third.size() / 2));

  const auto loaded = robust::read_journal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->trials.size(), 2u);
  EXPECT_EQ(loaded->dropped_lines, 1u);
  EXPECT_EQ(loaded->valid_bytes, good.size());
  std::remove(path.c_str());
}

TEST(JournalIo, CorruptMidFileLineEndsTheAppendPrefix) {
  const std::string path = tmp_path("corrupt_mid.ckpt");
  TrialRecord t;
  t.family = "trial";
  t.payload = "x";
  t.index = 0;
  const std::string l0 = robust::encode_journal_line(t);
  t.index = 1;
  std::string l1 = robust::encode_journal_line(t);
  t.index = 2;
  const std::string l2 = robust::encode_journal_line(t);
  // Flip one payload byte in the middle line: CRC must reject it.
  l1[l1.size() / 2] ^= 0x01;
  dump(path, l0 + l1 + l2);

  const auto loaded = robust::read_journal(path);
  ASSERT_TRUE(loaded.ok());
  // Records after the corruption are still accepted (keyed, order-free)...
  EXPECT_EQ(loaded->trials.size(), 2u);
  EXPECT_EQ(loaded->dropped_lines, 1u);
  // ...but the truncation point for future appends is before the bad line.
  EXPECT_EQ(loaded->valid_bytes, l0.size());
  std::remove(path.c_str());
}

// -------------------------------------------------------- journal session --

TEST(CheckpointJournalTest, OpenAppendResumeFinds) {
  const std::string path = tmp_path("session.ckpt");
  remove_journal(path);
  {
    auto journal = CheckpointJournal::open(path, "exp", 0xabcdull, false);
    ASSERT_TRUE(journal.ok()) << journal.error_message();
    EXPECT_FALSE((*journal)->info().resumed);
    TrialRecord t{"trial", 3, 17, "payload"};
    (*journal)->append(t);
    QuarantineRecord q{"trial", 4, 18, robust::ErrorCode::kIterationLimit,
                       "budget", 2};
    (*journal)->append(q);
    // Duplicate keys are skipped — replay never duplicates a line.
    (*journal)->append(t);
  }  // destructor flushes
  {
    auto journal = CheckpointJournal::open(path, "exp", 0xabcdull, true);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE((*journal)->info().resumed);
    EXPECT_EQ((*journal)->info().prior_trials, 1u);
    EXPECT_EQ((*journal)->info().prior_quarantined, 1u);
    const TrialRecord* found = (*journal)->find("trial", 3);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->seed, 17u);
    EXPECT_EQ(found->payload, "payload");
    EXPECT_EQ((*journal)->find("trial", 99), nullptr);
    const QuarantineRecord* foundq = (*journal)->find_quarantined("trial", 4);
    ASSERT_NE(foundq, nullptr);
    EXPECT_EQ(foundq->attempts, 2u);
  }
  remove_journal(path);
}

TEST(CheckpointJournalTest, ManifestMismatchFallsBackToFreshJournal) {
  const std::string path = tmp_path("mismatch.ckpt");
  remove_journal(path);
  {
    auto journal = CheckpointJournal::open(path, "exp", 1, false);
    ASSERT_TRUE(journal.ok());
    (*journal)->append(TrialRecord{"trial", 0, 0, "p"});
  }
  {
    // Different config hash: the journal must not feed stale trials.
    auto journal = CheckpointJournal::open(path, "exp", 2, true);
    ASSERT_TRUE(journal.ok());
    EXPECT_FALSE((*journal)->info().resumed);
    EXPECT_FALSE((*journal)->info().note.empty());
    EXPECT_EQ((*journal)->find("trial", 0), nullptr);
  }
  {
    // Different experiment name, same effect.
    auto journal = CheckpointJournal::open(path, "other", 2, true);
    ASSERT_TRUE(journal.ok());
    EXPECT_FALSE((*journal)->info().resumed);
  }
  remove_journal(path);
}

TEST(CheckpointJournalTest, ResumeTruncatesTornTailThenAppendsCleanly) {
  const std::string path = tmp_path("truncate.ckpt");
  remove_journal(path);
  {
    auto journal = CheckpointJournal::open(path, "exp", 5, false);
    ASSERT_TRUE(journal.ok());
    (*journal)->append(TrialRecord{"trial", 0, 10, "a"});
    (*journal)->append(TrialRecord{"trial", 1, 11, "b"});
  }
  // Crash mid-append: chop bytes off the tail.
  const std::string full = slurp(path);
  dump(path, full.substr(0, full.size() - 5));
  {
    auto journal = CheckpointJournal::open(path, "exp", 5, true);
    ASSERT_TRUE(journal.ok());
    EXPECT_TRUE((*journal)->info().resumed);
    EXPECT_EQ((*journal)->info().prior_trials, 1u);
    EXPECT_EQ((*journal)->info().dropped_lines, 1u);
    (*journal)->append(TrialRecord{"trial", 1, 11, "b"});
    (*journal)->flush();
  }
  // After the truncate + re-append the journal is fully valid again.
  const auto loaded = robust::read_journal(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dropped_lines, 0u);
  EXPECT_EQ(loaded->trials.size(), 2u);
  remove_journal(path);
}

// ------------------------------------------------------ watchdog & budget --

TEST(WatchdogTest, DisarmedAndUnlimitedNeverExpire) {
  EXPECT_TRUE(Budget{}.unlimited());
  Watchdog disarmed;
  EXPECT_FALSE(disarmed.armed());
  EXPECT_FALSE(disarmed.expired());
  EXPECT_EQ(disarmed.remaining_ms(),
            std::numeric_limits<double>::infinity());
  Watchdog unlimited{Budget{}};
  EXPECT_FALSE(unlimited.armed());
  EXPECT_FALSE(unlimited.expired(1u << 30));
}

TEST(WatchdogTest, IterationBudgetExpiresPastTheLimit) {
  Watchdog dog{Budget{0.0, 10}};
  EXPECT_TRUE(dog.armed());
  EXPECT_FALSE(dog.expired(10));
  EXPECT_TRUE(dog.expired(11));
}

TEST(WatchdogTest, TinyWallBudgetExpires) {
  Watchdog dog{Budget{1e-7, 0}};
  // Burn a little time; 100 ns of wall budget cannot survive it.
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i)
    sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_TRUE(dog.expired());
  EXPECT_EQ(dog.remaining_ms(), 0.0);
}

TEST(WatchdogTest, ScopedTrialDeadlineNestsAndRestores) {
  EXPECT_EQ(robust::ScopedTrialDeadline::current(), nullptr);
  Watchdog outer{Budget{1e9, 0}};
  {
    robust::ScopedTrialDeadline a(&outer);
    EXPECT_EQ(robust::ScopedTrialDeadline::current(), &outer);
    Watchdog inner{Budget{1e9, 0}};
    {
      robust::ScopedTrialDeadline b(&inner);
      EXPECT_EQ(robust::ScopedTrialDeadline::current(), &inner);
      {
        // nullptr explicitly clears the ambient deadline for a scope.
        robust::ScopedTrialDeadline c(nullptr);
        EXPECT_EQ(robust::ScopedTrialDeadline::current(), nullptr);
      }
      EXPECT_EQ(robust::ScopedTrialDeadline::current(), &inner);
    }
    EXPECT_EQ(robust::ScopedTrialDeadline::current(), &outer);
    // A disarmed watchdog never becomes the ambient deadline.
    Watchdog disarmed;
    robust::ScopedTrialDeadline d(&disarmed);
    EXPECT_EQ(robust::ScopedTrialDeadline::current(), nullptr);
  }
  EXPECT_EQ(robust::ScopedTrialDeadline::current(), nullptr);
}

TEST(WatchdogTest, ShutdownFlagRequestAndReset) {
  robust::reset_shutdown();
  EXPECT_FALSE(robust::shutdown_requested());
  robust::request_shutdown();
  EXPECT_TRUE(robust::shutdown_requested());
  robust::reset_shutdown();
  EXPECT_FALSE(robust::shutdown_requested());
}

TEST(RetryPolicyTest, BackoffSaturatesInsteadOfOverflowing) {
  robust::RetryPolicy policy;
  policy.backoff_base_ms = 10.0;
  policy.backoff_factor = 2.0;
  policy.max_backoff_ms = 60'000.0;
  // 2^10000 overflows double; the curve must cap, not go inf/NaN.
  EXPECT_EQ(policy.backoff_before(10'000), policy.max_backoff_ms);
  EXPECT_TRUE(std::isfinite(policy.backoff_before(1'000'000)));
  policy.probe_deadline_ms = 5.0;
  EXPECT_EQ(policy.deadline_for(10'000), policy.max_backoff_ms);
}

TEST(RetryPolicyTest, BackoffClampsToRemainingDeadline) {
  robust::RetryPolicy policy;
  policy.backoff_base_ms = 10.0;
  policy.backoff_factor = 2.0;
  const double unclamped = policy.backoff_before(3);  // 80 ms
  EXPECT_EQ(policy.backoff_before(3, 5.0), 5.0);
  EXPECT_EQ(policy.backoff_before(3, 0.0), 0.0);
  // Negative = "no overall deadline": the clamp is a no-op.
  EXPECT_EQ(policy.backoff_before(3, -1.0), unclamped);
  EXPECT_EQ(policy.backoff_before(3, 1e9), unclamped);
}

TEST(SimplexWatchdog, ExpiredBudgetReturnsTimeLimitWithBasis) {
  lp::Model m(lp::Sense::kMaximize);
  const auto x = m.add_variable(0, lp::kInfinity, 3.0, "x");
  const auto y = m.add_variable(0, lp::kInfinity, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::RowType::kLessEqual, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, lp::RowType::kLessEqual, 6.0);

  lp::SimplexOptions opt;
  opt.max_wall_ms = 1e-7;  // expires before the first stride poll
  const lp::Solution timed_out = lp::solve(m, opt);
  EXPECT_EQ(timed_out.status, lp::SolveStatus::kTimeLimit);
  EXPECT_FALSE(timed_out.basis.empty());  // exit certificate

  // The ambient trial deadline has the same effect without touching options.
  Watchdog expired{Budget{1e-7, 0}};
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
  ASSERT_TRUE(expired.expired());
  {
    robust::ScopedTrialDeadline scope(&expired);
    EXPECT_EQ(lp::solve(m).status, lp::SolveStatus::kTimeLimit);
  }
  EXPECT_EQ(lp::solve(m).status, lp::SolveStatus::kOptimal);
}

TEST(AtomicFileTest, WriteCreatesAndReplaces) {
  const std::string path = tmp_path("atomic.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(write_file_atomic(path, "first").ok());
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(write_file_atomic(path, "second, longer contents").ok());
  EXPECT_EQ(slurp(path), "second, longer contents");
  std::remove(path.c_str());
}

// ------------------------------------------- experiment-level kill/resume --

PresenceRatioOptions small_fig7() {
  PresenceRatioOptions opt;
  opt.topologies = 2;
  opt.trials_per_topology = 24;
  opt.seed = 4242;
  opt.threads = 1;
  return opt;
}

void expect_fig7_equal(const PresenceRatioSeries& a,
                       const PresenceRatioSeries& b) {
  EXPECT_EQ(a.total_trials, b.total_trials);
  EXPECT_EQ(a.trials_quarantined, b.trials_quarantined);
  ASSERT_EQ(a.bins.size(), b.bins.size());
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    EXPECT_EQ(a.bins[i].trials, b.bins[i].trials) << "bin " << i;
    EXPECT_EQ(a.bins[i].successes, b.bins[i].successes) << "bin " << i;
  }
}

// Resumes `opt` (sessions stop on a new-trial quota) until a session runs to
// completion, cycling worker counts; yields the completed series and the
// number of sessions it took.
void resume_until_complete(PresenceRatioOptions opt, PresenceRatioSeries* out,
                           std::size_t* sessions_out) {
  const std::size_t thread_cycle[] = {2, 4, 1, 8};
  std::size_t sessions = 0;
  do {
    opt.threads = thread_cycle[sessions % 4];
    *out = run_presence_ratio_experiment(TopologyKind::kWireline, opt);
    ASSERT_LT(++sessions, 20u) << "resume loop is not converging";
  } while (out->interrupted);
  if (sessions_out != nullptr) *sessions_out = sessions;
}

TEST(CheckpointExperiment, JournalingDoesNotChangeTheSeries) {
  const std::string path = tmp_path("fig7_journal.ckpt");
  remove_journal(path);
  PresenceRatioOptions opt = small_fig7();
  const PresenceRatioSeries baseline =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  opt.resilience.checkpoint_path = path;
  opt.threads = 4;
  const PresenceRatioSeries journaled =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  expect_fig7_equal(baseline, journaled);
  EXPECT_EQ(journaled.trials_replayed, 0u);
  EXPECT_FALSE(journaled.interrupted);

  // A full replay recomputes nothing and folds identically.
  opt.resilience.resume = true;
  const PresenceRatioSeries replayed =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  expect_fig7_equal(baseline, replayed);
  // Every journaled trial replays — including the uncounted ones (no viable
  // attacker placement) that never reach a bin, so compare against the raw
  // trial count, not total_trials.
  EXPECT_EQ(replayed.trials_replayed, opt.topologies * opt.trials_per_topology);
  remove_journal(path);
}

TEST(CheckpointExperiment, QuotaInterruptedSessionsResumeToIdenticalSeries) {
  const std::string path = tmp_path("fig7_quota.ckpt");
  remove_journal(path);
  const PresenceRatioSeries baseline =
      run_presence_ratio_experiment(TopologyKind::kWireline, small_fig7());

  PresenceRatioOptions opt = small_fig7();
  opt.resilience.checkpoint_path = path;
  opt.resilience.resume = true;
  opt.resilience.stop_after_new_trials = 15;  // < one topology block
  std::size_t sessions = 0;
  PresenceRatioSeries resumed;
  resume_until_complete(opt, &resumed, &sessions);
  EXPECT_GE(sessions, 2u);  // the quota really did interrupt
  expect_fig7_equal(baseline, resumed);
  EXPECT_EQ(resumed.trials_replayed, opt.topologies * opt.trials_per_topology);
  remove_journal(path);
}

TEST(CheckpointExperiment, ShutdownRequestInterruptsResumably) {
  const std::string path = tmp_path("fig7_shutdown.ckpt");
  remove_journal(path);
  const PresenceRatioSeries baseline =
      run_presence_ratio_experiment(TopologyKind::kWireline, small_fig7());

  PresenceRatioOptions opt = small_fig7();
  opt.resilience.checkpoint_path = path;
  opt.resilience.resume = true;
  robust::request_shutdown();  // the programmatic SIGINT/SIGTERM
  const PresenceRatioSeries stopped =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  robust::reset_shutdown();
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_LT(stopped.total_trials, baseline.total_trials);

  const PresenceRatioSeries resumed =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_FALSE(resumed.interrupted);
  expect_fig7_equal(baseline, resumed);
  EXPECT_GT(resumed.trials_replayed, 0u);
  remove_journal(path);
}

TEST(CheckpointExperiment, TornJournalTailRecomputesTheLostTrials) {
  const std::string path = tmp_path("fig7_torn.ckpt");
  remove_journal(path);
  PresenceRatioOptions opt = small_fig7();
  const PresenceRatioSeries baseline =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  opt.resilience.checkpoint_path = path;
  run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  // Crash simulation: tear the last journal line mid-write.
  const std::string full = slurp(path);
  ASSERT_GT(full.size(), 10u);
  dump(path, full.substr(0, full.size() - 10));

  opt.resilience.resume = true;
  const PresenceRatioSeries resumed =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  expect_fig7_equal(baseline, resumed);
  EXPECT_GT(resumed.trials_replayed, 0u);
  EXPECT_LT(resumed.trials_replayed, opt.topologies * opt.trials_per_topology);
  remove_journal(path);
}

TEST(CheckpointExperiment, QuarantineIsCountedAndStickyAcrossResume) {
  const std::string path = tmp_path("fig7_quarantine.ckpt");
  remove_journal(path);
  PresenceRatioOptions opt = small_fig7();
  opt.topologies = 1;
  opt.trials_per_topology = 6;
  opt.resilience.checkpoint_path = path;
  opt.resilience.resume = true;
  // 100 ns of wall budget: every attempt expires, every trial quarantines
  // after the default retry.
  opt.resilience.trial_budget.wall_ms = 1e-7;
  const PresenceRatioSeries starved =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(starved.trials_quarantined, 6u);
  EXPECT_EQ(starved.total_trials, 0u);  // excluded from every aggregate
  for (const PresenceRatioBin& b : starved.bins) EXPECT_EQ(b.trials, 0u);

  // Quarantine records carry the attempt count (1 + trial_retries).
  const auto journal = robust::read_journal(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->quarantined.size(), 6u);
  for (const auto& [key, record] : journal->quarantined) {
    EXPECT_EQ(record.attempts, 1 + opt.resilience.trial_retries);
    EXPECT_EQ(record.code, robust::ErrorCode::kIterationLimit);
  }

  // A poisoned trial stays quarantined on resume even with the budget
  // lifted — never silently recomputed, never silently dropped.
  opt.resilience.trial_budget = Budget{};
  const PresenceRatioSeries resumed =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(resumed.trials_quarantined, 6u);
  EXPECT_EQ(resumed.total_trials, 0u);
  EXPECT_EQ(resumed.trials_replayed, 0u);
  remove_journal(path);
}

TEST(CheckpointExperiment, FaultSweepResumesBitwiseIdentically) {
  const std::string path = tmp_path("sweep.ckpt");
  remove_journal(path);
  FaultSweepOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 8;
  opt.loss_rates = {0.0, 0.05};
  opt.seed = 333;
  opt.threads = 2;
  const FaultSweepSeries baseline = run_fault_sweep(TopologyKind::kWireline, opt);

  opt.resilience.checkpoint_path = path;
  opt.resilience.resume = true;
  opt.resilience.stop_after_new_trials = 5;  // < one (cell, topology) block
  const std::size_t thread_cycle[] = {4, 1, 2, 8};
  FaultSweepSeries resumed;
  std::size_t sessions = 0;
  do {
    opt.threads = thread_cycle[sessions % 4];
    resumed = run_fault_sweep(TopologyKind::kWireline, opt);
    ASSERT_LT(++sessions, 20u) << "resume loop is not converging";
  } while (resumed.interrupted);
  EXPECT_GE(sessions, 2u);

  EXPECT_EQ(resumed.total_trials, baseline.total_trials);
  EXPECT_EQ(resumed.trials_quarantined, baseline.trials_quarantined);
  ASSERT_EQ(resumed.cells.size(), baseline.cells.size());
  for (std::size_t i = 0; i < baseline.cells.size(); ++i) {
    const FaultSweepCell& a = baseline.cells[i];
    const FaultSweepCell& b = resumed.cells[i];
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.full_rank, b.full_rank);
    EXPECT_EQ(a.fallback, b.fallback);
    EXPECT_EQ(a.unsolvable, b.unsolvable);
    EXPECT_EQ(a.paths_total, b.paths_total);
    EXPECT_EQ(a.paths_measured, b.paths_measured);
    EXPECT_EQ(a.alarms, b.alarms);
    // The replay payload carries doubles as IEEE bit patterns; the folded
    // error statistics must come back bitwise identical, not merely close.
    EXPECT_TRUE(bits_equal(a.mean_abs_error_ms, b.mean_abs_error_ms)) << i;
    EXPECT_TRUE(bits_equal(a.max_abs_error_ms, b.max_abs_error_ms)) << i;
  }
  remove_journal(path);
}

TEST(CheckpointExperiment, DetectionExperimentResumesIdentically) {
  const std::string path = tmp_path("fig9.ckpt");
  remove_journal(path);
  DetectionOptionsExperiment opt;
  opt.topologies = 1;
  opt.successful_attacks_per_cell = 3;
  opt.max_trials_per_cell = 60;
  opt.seed = 77;
  opt.threads = 2;
  const DetectionSeries baseline =
      run_detection_experiment(TopologyKind::kWireline, opt);

  opt.resilience.checkpoint_path = path;
  opt.resilience.resume = true;
  opt.resilience.stop_after_new_trials = 25;
  const std::size_t thread_cycle[] = {1, 4, 2, 8};
  DetectionSeries resumed;
  std::size_t sessions = 0;
  do {
    opt.threads = thread_cycle[sessions % 4];
    resumed = run_detection_experiment(TopologyKind::kWireline, opt);
    ASSERT_LT(++sessions, 30u) << "resume loop is not converging";
  } while (resumed.interrupted);
  EXPECT_GE(sessions, 2u);

  EXPECT_EQ(resumed.clean_trials, baseline.clean_trials);
  EXPECT_EQ(resumed.false_alarms, baseline.false_alarms);
  EXPECT_EQ(resumed.trials_quarantined, baseline.trials_quarantined);
  ASSERT_EQ(resumed.cells.size(), baseline.cells.size());
  for (std::size_t i = 0; i < baseline.cells.size(); ++i) {
    EXPECT_EQ(resumed.cells[i].strategy, baseline.cells[i].strategy) << i;
    EXPECT_EQ(resumed.cells[i].perfect_cut, baseline.cells[i].perfect_cut) << i;
    EXPECT_EQ(resumed.cells[i].attacks, baseline.cells[i].attacks) << i;
    EXPECT_EQ(resumed.cells[i].detected, baseline.cells[i].detected) << i;
  }
  remove_journal(path);
}

#if !defined(SCAPEGOAT_NO_FORK_TESTS)
TEST(CheckpointExperiment, SigkilledSessionsResumeToIdenticalSeries) {
  const std::string path = tmp_path("fig7_sigkill.ckpt");
  remove_journal(path);
  PresenceRatioOptions opt = small_fig7();
  const PresenceRatioSeries baseline =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  opt.resilience.checkpoint_path = path;
  opt.resilience.resume = true;
  // Kill a child mid-run at staggered points; each later child resumes the
  // journal the previous one left behind (possibly with a torn tail).
  const useconds_t kill_after_us[] = {20'000, 60'000, 150'000};
  for (const useconds_t delay : kill_after_us) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: run the checkpointed experiment; _exit skips all cleanup so
      // even a child that finishes looks like a crash to the parent.
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
      _exit(0);
    }
    ::usleep(delay);
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  }

  // Whatever state the kills left, one clean resume completes the series.
  const PresenceRatioSeries resumed =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_FALSE(resumed.interrupted);
  expect_fig7_equal(baseline, resumed);
  remove_journal(path);
}
#endif  // !SCAPEGOAT_NO_FORK_TESTS

}  // namespace
}  // namespace scapegoat
