// Focused tests for the chosen-victim strategy (Eq. 4-7), including the
// consistent manipulation mode and collateral policies.

#include "attack/chosen_victim.hpp"

#include <gtest/gtest.h>

#include "attack/cut.hpp"
#include "core/scenario.hpp"
#include "tomography/estimator.hpp"
#include "topology/example_networks.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

class ChosenVictimTest : public ::testing::Test {
 protected:
  ChosenVictimTest()
      : rng_(31), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(ChosenVictimTest, EveryNonControlledLinkIsAttackable) {
  // On Fig. 1 the attackers sit on 22/23 paths: all of links 1, 9, 10 can be
  // scapegoated (link 1 perfectly, 9/10 imperfectly).
  AttackContext ctx = scenario_.context(net_.attackers);
  for (LinkId v : {LinkId{0}, LinkId{8}, LinkId{9}}) {
    const AttackResult r = chosen_victim_attack(ctx, {v});
    EXPECT_TRUE(r.success) << "victim " << v;
    if (r.success) EXPECT_TRUE(verify_chosen_victim_result(ctx, r));
  }
}

TEST_F(ChosenVictimTest, MultiVictimAttackWorks) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {0, 9});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states[0], LinkState::kAbnormal);
  EXPECT_EQ(r.states[9], LinkState::kAbnormal);
  EXPECT_TRUE(verify_chosen_victim_result(ctx, r));
}

TEST_F(ChosenVictimTest, DamageIsMaximizedNotJustFeasible) {
  // The LP must saturate some path caps — a merely-feasible solution would
  // leave obvious headroom.
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(r.success);
  double max_entry = 0.0;
  for (double mi : r.m) max_entry = std::max(max_entry, mi);
  EXPECT_NEAR(max_entry, ctx.per_path_cap, 1e-6);
}

TEST_F(ChosenVictimTest, CollateralAvoidAbnormalHolds) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r =
      chosen_victim_attack(ctx, {9}, ManipulationMode::kUnrestricted,
                           CollateralPolicy::kAvoidAbnormal);
  ASSERT_TRUE(r.success);
  for (LinkId l = 0; l < r.x_estimated.size(); ++l) {
    if (l == 9) continue;
    EXPECT_NE(r.states[l], LinkState::kAbnormal) << "link " << l;
  }
  EXPECT_EQ(r.states[9], LinkState::kAbnormal);
}

TEST_F(ChosenVictimTest, CollateralKeepNormalIsStricter) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult loose =
      chosen_victim_attack(ctx, {9}, ManipulationMode::kUnrestricted,
                           CollateralPolicy::kAvoidAbnormal);
  const AttackResult strict =
      chosen_victim_attack(ctx, {9}, ManipulationMode::kUnrestricted,
                           CollateralPolicy::kKeepNormal);
  ASSERT_TRUE(loose.success);
  if (strict.success) {
    // Stricter constraints can only reduce the achievable damage.
    EXPECT_LE(strict.damage, loose.damage + 1e-6);
    for (LinkId l = 0; l < strict.x_estimated.size(); ++l)
      if (l != 9) EXPECT_EQ(strict.states[l], LinkState::kNormal);
  }
}

TEST_F(ChosenVictimTest, ConsistentModeProducesExactlyConsistentY) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r =
      chosen_victim_attack(ctx, {0}, ManipulationMode::kConsistent);
  ASSERT_TRUE(r.success);
  // R x̂ == y′ to numerical precision.
  const Vector reproduced = ctx.estimator->r() * r.x_estimated;
  EXPECT_TRUE(approx_equal(reproduced, r.y_observed, 1e-6));
  // The consistent attack moves ONLY links in L_m ∪ L_s.
  for (LinkId l = 0; l < r.x_estimated.size(); ++l) {
    if (l == 0) continue;
    const auto lm = ctx.controlled_links();
    if (std::find(lm.begin(), lm.end(), l) != lm.end()) continue;
    EXPECT_NEAR(r.x_estimated[l], ctx.x_true[l], 1e-6) << "link " << l;
  }
}

TEST_F(ChosenVictimTest, ConsistentDamageNeverExceedsUnrestricted) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult consistent =
      chosen_victim_attack(ctx, {0}, ManipulationMode::kConsistent);
  const AttackResult unrestricted = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(consistent.success);
  ASSERT_TRUE(unrestricted.success);
  EXPECT_LE(consistent.damage, unrestricted.damage + 1e-6);
}

TEST(ChosenVictimNoAttackers, AttackIsInfeasible) {
  Rng rng(32);
  Scenario sc = Scenario::fig1(rng);
  AttackContext ctx = sc.context({});
  const AttackResult r = chosen_victim_attack(ctx, {0});
  EXPECT_FALSE(r.success);
}

TEST(ChosenVictimWeakAttacker, UninfluencedVictimIsInfeasible) {
  // Hand-built deployment where R is the identity (one 1-hop path per link,
  // all nodes monitors): the pseudo-inverse is the identity too, so an
  // attacker at node 0 has zero influence on the estimate of any link not
  // incident to it — the attack must come back infeasible.
  Graph g = ring(8);
  std::vector<Path> paths;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    Path p;
    p.nodes = {g.link(l).u, g.link(l).v};
    p.links = {l};
    paths.push_back(p);
  }
  // One redundant 2-hop path (keeps R non-square) away from node 0.
  {
    Path p;
    p.nodes = {3, 4, 5};
    p.links = {*g.find_link(3, 4), *g.find_link(4, 5)};
    paths.push_back(p);
  }
  TomographyEstimator est(g, paths);
  ASSERT_TRUE(est.ok());

  AttackContext ctx;
  ctx.graph = &g;
  ctx.estimator = &est;
  ctx.x_true = Vector(g.num_links(), 10.0);
  ctx.attackers = {0};
  const auto victim = g.find_link(4, 5);
  ASSERT_TRUE(victim.has_value());
  const AttackResult r = chosen_victim_attack(ctx, {*victim});
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

}  // namespace
}  // namespace scapegoat
