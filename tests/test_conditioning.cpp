// Tests for the spectral-conditioning estimator.

#include "linalg/conditioning.hpp"

#include <gtest/gtest.h>

#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"
#include "util/random.hpp"

namespace scapegoat {
namespace {

TEST(Conditioning, IdentityIsPerfectlyConditioned) {
  auto est = estimate_condition(Matrix::identity(6));
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->sigma_max, 1.0, 1e-8);
  EXPECT_NEAR(est->sigma_min, 1.0, 1e-8);
  EXPECT_NEAR(est->condition(), 1.0, 1e-8);
}

TEST(Conditioning, DiagonalMatrixExactSingularValues) {
  Matrix d(4, 4);
  d(0, 0) = 10.0;
  d(1, 1) = 5.0;
  d(2, 2) = 2.0;
  d(3, 3) = 0.5;
  auto est = estimate_condition(d);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->sigma_max, 10.0, 1e-6);
  EXPECT_NEAR(est->sigma_min, 0.5, 1e-6);
  EXPECT_NEAR(est->condition(), 20.0, 1e-4);
}

TEST(Conditioning, ScalingIsHomogeneous) {
  Rng rng(441);
  Matrix a(8, 4);
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 4; ++c) a(r, c) = rng.uniform(-1, 1);
  auto base = estimate_condition(a);
  ASSERT_TRUE(base.has_value());
  auto scaled = estimate_condition(3.0 * a);
  ASSERT_TRUE(scaled.has_value());
  EXPECT_NEAR(scaled->sigma_max, 3.0 * base->sigma_max, 1e-5);
  EXPECT_NEAR(scaled->condition(), base->condition(), 1e-4);
}

TEST(Conditioning, RejectsRankDeficientAndWide) {
  Matrix wide(2, 4, 1.0);
  EXPECT_FALSE(estimate_condition(wide).has_value());
  Matrix rank1(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    rank1(r, 0) = 1.0;
    rank1(r, 1) = 2.0;  // second column = 2 × first
  }
  EXPECT_FALSE(estimate_condition(rank1).has_value());
  EXPECT_FALSE(estimate_condition(Matrix()).has_value());
}

TEST(Conditioning, BoundsHoldOnRoutingMatrix) {
  ExampleNetwork net = fig1_network();
  const Matrix r = routing_matrix(net.graph, net.paths);
  auto est = estimate_condition(r);
  ASSERT_TRUE(est.has_value());
  EXPECT_GE(est->sigma_max, est->sigma_min);
  EXPECT_GT(est->sigma_min, 0.0);
  // Frobenius bound: σ_max ≤ ‖R‖_F ≤ √rank · σ_max.
  EXPECT_LE(est->sigma_max, r.norm_fro() + 1e-9);
  EXPECT_GE(est->condition(), 1.0);
}

}  // namespace
}  // namespace scapegoat
