// Tests for articulation points, bridges and vertex-cut queries.

#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace scapegoat {
namespace {

TEST(ArticulationPoints, ChainInteriorNodes) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{1, 2}));
}

TEST(ArticulationPoints, NoneInRingOrComplete) {
  EXPECT_TRUE(articulation_points(ring(6)).empty());
  EXPECT_TRUE(articulation_points(complete(5)).empty());
}

TEST(ArticulationPoints, BowtieCenter) {
  // Two triangles sharing node 2.
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 0);
  g.add_link(2, 3);
  g.add_link(3, 4);
  g.add_link(4, 2);
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{2}));
}

TEST(Bridges, ChainAllLinksAreBridges) {
  Graph g(4);
  LinkId a = *g.add_link(0, 1);
  LinkId b = *g.add_link(1, 2);
  LinkId c = *g.add_link(2, 3);
  EXPECT_EQ(bridges(g), (std::vector<LinkId>{a, b, c}));
}

TEST(Bridges, RingHasNone) { EXPECT_TRUE(bridges(ring(5)).empty()); }

TEST(Bridges, PendantEdgeOnRing) {
  Graph g = ring(4);
  const NodeId leaf = g.add_node();
  const LinkId pendant = *g.add_link(0, leaf);
  EXPECT_EQ(bridges(g), (std::vector<LinkId>{pendant}));
}

TEST(Separates, CutVertexSeparates) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(1, 2);
  EXPECT_TRUE(separates(g, {1}, 0, 2));
  EXPECT_FALSE(separates(g, {}, 0, 2));
}

TEST(Separates, RedundantPathsNeedFullCut) {
  // Diamond 0-1-3, 0-2-3.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 3);
  g.add_link(0, 2);
  g.add_link(2, 3);
  EXPECT_FALSE(separates(g, {1}, 0, 3));
  EXPECT_TRUE(separates(g, {1, 2}, 0, 3));
}

TEST(ArticulationAndBridgesOnDisconnectedGraph, PerComponent) {
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);  // chain component: node 1 articulates
  g.add_link(3, 4);
  g.add_link(4, 5);
  g.add_link(5, 3);  // triangle component: nothing articulates
  EXPECT_EQ(articulation_points(g), (std::vector<NodeId>{1}));
  EXPECT_EQ(bridges(g).size(), 2u);
}

}  // namespace
}  // namespace scapegoat
