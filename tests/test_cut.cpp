// Tests for perfect-cut analysis and the attack presence ratio (Fig. 7's
// x-axis).

#include "attack/cut.hpp"

#include <gtest/gtest.h>

#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

Path make_path(std::vector<NodeId> nodes, std::vector<LinkId> links) {
  Path p;
  p.nodes = std::move(nodes);
  p.links = std::move(links);
  return p;
}

TEST(PerfectCut, VacuouslyTrueWithNoVictimPaths) {
  std::vector<Path> paths = {make_path({0, 1}, {0})};
  EXPECT_TRUE(is_perfect_cut(paths, {5}, {99}));  // no path carries link 99
  const PresenceRatio pr = attack_presence_ratio(paths, {5}, {99});
  EXPECT_EQ(pr.victim_paths, 0u);
  EXPECT_DOUBLE_EQ(pr.ratio(), 1.0);
}

TEST(PerfectCut, DetectsCoveredAndUncoveredPaths) {
  // Two paths over victim link 7: one passes attacker node 3, one doesn't.
  std::vector<Path> paths = {
      make_path({0, 3, 4}, {1, 7}),
      make_path({5, 6, 4}, {2, 7}),
  };
  EXPECT_FALSE(is_perfect_cut(paths, {3}, {7}));
  const PresenceRatio pr = attack_presence_ratio(paths, {3}, {7});
  EXPECT_EQ(pr.victim_paths, 2u);
  EXPECT_EQ(pr.covered_paths, 1u);
  EXPECT_DOUBLE_EQ(pr.ratio(), 0.5);

  // Adding node 6 as attacker completes the cut.
  EXPECT_TRUE(is_perfect_cut(paths, {3, 6}, {7}));
  EXPECT_DOUBLE_EQ(attack_presence_ratio(paths, {3, 6}, {7}).ratio(), 1.0);
}

TEST(PerfectCut, MultiVictimNeedsAllCovered) {
  std::vector<Path> paths = {
      make_path({0, 3, 4}, {1, 7}),   // victim 7, covered by 3
      make_path({5, 6, 4}, {2, 8}),   // victim 8, covered only by 6
  };
  EXPECT_TRUE(is_perfect_cut(paths, {3, 6}, {7, 8}));
  EXPECT_FALSE(is_perfect_cut(paths, {3}, {7, 8}));
}

TEST(PerfectCut, Fig1GroundTruth) {
  ExampleNetwork net = fig1_network();
  // {B, C} perfectly cut link 1 but not links 9/10.
  EXPECT_TRUE(is_perfect_cut(net.paths, net.attackers, {0}));
  EXPECT_FALSE(is_perfect_cut(net.paths, net.attackers, {8}));
  EXPECT_FALSE(is_perfect_cut(net.paths, net.attackers, {9}));
  // Joint victim {1, 10}: imperfect because of link 10's path 17.
  EXPECT_FALSE(is_perfect_cut(net.paths, net.attackers, {0, 9}));
}

TEST(PresenceRatio, Fig1Link10) {
  ExampleNetwork net = fig1_network();
  const PresenceRatio pr =
      attack_presence_ratio(net.paths, net.attackers, {9});
  // All link-10 paths are covered except path 17.
  EXPECT_EQ(pr.covered_paths + 1, pr.victim_paths);
  EXPECT_GT(pr.ratio(), 0.8);
  EXPECT_LT(pr.ratio(), 1.0);
}

TEST(PresenceRatio, NoAttackersMeansZeroCoverage) {
  ExampleNetwork net = fig1_network();
  const PresenceRatio pr = attack_presence_ratio(net.paths, {}, {9});
  EXPECT_GT(pr.victim_paths, 0u);
  EXPECT_EQ(pr.covered_paths, 0u);
  EXPECT_DOUBLE_EQ(pr.ratio(), 0.0);
}

}  // namespace
}  // namespace scapegoat
