// Unit tests for LU, Cholesky and QR decompositions.

#include <gtest/gtest.h>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "util/random.hpp"

namespace scapegoat {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-5.0, 5.0);
  return m;
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector b{5.0, 10.0};
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  Vector x = lu.solve(b);
  EXPECT_TRUE(approx_equal(x, Vector{1.0, 3.0}, 1e-10));
}

TEST(Lu, DetectsSingularMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_FALSE(lu.ok());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
  EXPECT_FALSE(solve_square(a, Vector{1.0, 1.0}).has_value());
}

TEST(Lu, Determinant) {
  Matrix a{{3.0, 0.0, 0.0}, {0.0, 2.0, 0.0}, {0.0, 0.0, -1.0}};
  EXPECT_NEAR(LuDecomposition(a).determinant(), -6.0, 1e-12);
  // Row swaps flip sign internally but the determinant stays correct.
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(b).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseRoundTrip) {
  Rng rng(11);
  const Matrix a = random_matrix(6, 6, rng);
  LuDecomposition lu(a);
  ASSERT_TRUE(lu.ok());
  EXPECT_TRUE(approx_equal(a * lu.inverse(), Matrix::identity(6), 1e-8));
}

TEST(Lu, RandomSystemsRoundTrip) {
  Rng rng(42);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 2 + iter % 7;
    Matrix a = random_matrix(n, n, rng);
    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = rng.uniform(-3.0, 3.0);
    Vector b = a * x_true;
    LuDecomposition lu(a);
    if (!lu.ok()) continue;  // singular draw, astronomically unlikely
    EXPECT_TRUE(approx_equal(lu.solve(b), x_true, 1e-7));
  }
}

TEST(Cholesky, SolvesSpdSystem) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  CholeskyDecomposition chol(a);
  ASSERT_TRUE(chol.ok());
  Vector b{8.0, 7.0};
  Vector x = chol.solve(b);
  EXPECT_TRUE(approx_equal(a * x, b, 1e-10));
  // L is lower-triangular with L Lᵀ = a.
  const Matrix l = chol.l();
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
  EXPECT_TRUE(approx_equal(l * l.transposed(), a, 1e-10));
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3 and -1
  EXPECT_FALSE(CholeskyDecomposition(a).ok());
}

TEST(Cholesky, RejectsSemidefiniteMatrix) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(CholeskyDecomposition(a).ok());
}

TEST(Cholesky, NormalEquationsMatchTruth) {
  Rng rng(7);
  const Matrix a = random_matrix(10, 4, rng);
  Vector x_true{1.0, -2.0, 0.5, 3.0};
  const Vector b = a * x_true;
  auto x = solve_normal_equations(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(approx_equal(*x, x_true, 1e-8));
}

TEST(Qr, ReconstructsRankAndSolves) {
  Rng rng(3);
  const Matrix a = random_matrix(8, 5, rng);
  QrDecomposition qr(a, QrDecomposition::Pivoting::kColumn);
  EXPECT_EQ(qr.rank(), 5u);
  EXPECT_TRUE(qr.full_column_rank());

  Vector x_true{2.0, -1.0, 0.0, 4.0, 1.5};
  Vector b = a * x_true;
  EXPECT_TRUE(approx_equal(qr.solve(b), x_true, 1e-8));
}

TEST(Qr, DetectsRankDeficiency) {
  // Third column = first + second.
  Matrix a(6, 3);
  Rng rng(5);
  for (std::size_t r = 0; r < 6; ++r) {
    a(r, 0) = rng.uniform(-1.0, 1.0);
    a(r, 1) = rng.uniform(-1.0, 1.0);
    a(r, 2) = a(r, 0) + a(r, 1);
  }
  EXPECT_EQ(matrix_rank(a), 2u);
  QrDecomposition qr(a, QrDecomposition::Pivoting::kColumn);
  EXPECT_FALSE(qr.full_column_rank());
}

TEST(Qr, RankOfZeroAndIdentity) {
  EXPECT_EQ(matrix_rank(Matrix(4, 4, 0.0)), 0u);
  EXPECT_EQ(matrix_rank(Matrix::identity(5)), 5u);
  EXPECT_EQ(matrix_rank(Matrix(0, 0)), 0u);
}

TEST(Qr, RankOfWideMatrix) {
  Matrix a{{1.0, 0.0, 1.0, 2.0}, {0.0, 1.0, 1.0, 3.0}};
  EXPECT_EQ(matrix_rank(a), 2u);
}

TEST(Qr, LeastSquaresMinimizesResidual) {
  // Overdetermined inconsistent system: solution must satisfy the normal
  // equations Aᵀ(b − Ax) = 0.
  Matrix a{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  Vector b{1.0, 1.0, 0.0};
  QrDecomposition qr(a);
  Vector x = qr.solve(b);
  Vector resid = b - a * x;
  Vector grad = a.transposed() * resid;
  EXPECT_NEAR(grad.norm_inf(), 0.0, 1e-10);
}

TEST(PseudoInverse, LeftInverseProperty) {
  Rng rng(9);
  const Matrix a = random_matrix(12, 6, rng);
  const Matrix pinv = pseudo_inverse(a);
  EXPECT_EQ(pinv.rows(), 6u);
  EXPECT_EQ(pinv.cols(), 12u);
  EXPECT_TRUE(approx_equal(pinv * a, Matrix::identity(6), 1e-8));
}

TEST(PseudoInverse, ProjectionIsSymmetricIdempotent) {
  Rng rng(13);
  const Matrix a = random_matrix(9, 4, rng);
  const Matrix p = a * pseudo_inverse(a);  // orthogonal projector onto col(a)
  EXPECT_TRUE(approx_equal(p, p.transposed(), 1e-8));
  EXPECT_TRUE(approx_equal(p * p, p, 1e-8));
}

}  // namespace
}  // namespace scapegoat
