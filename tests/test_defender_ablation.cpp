// Defender-choice ablation (core/defender_ablation.hpp): shape of the
// sweep, the bitwise thread-count-independence contract, and a pinned
// small-configuration separation regime backing the EXPERIMENTS.md claim.

#include "core/defender_ablation.hpp"

#include <gtest/gtest.h>

namespace scapegoat {
namespace {

bool same_series(const AblationSeries& a, const AblationSeries& b) {
  if (a.epsilons != b.epsilons || a.total_trials != b.total_trials ||
      a.clean_trials != b.clean_trials ||
      a.ls_false_alarms != b.ls_false_alarms ||
      a.sparse_false_alarms != b.sparse_false_alarms ||
      a.cells.size() != b.cells.size())
    return false;
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const AblationCell& x = a.cells[i];
    const AblationCell& y = b.cells[i];
    if (x.family != y.family || x.sparsity != y.sparsity ||
        x.attacks != y.attacks || x.ls_detected != y.ls_detected ||
        x.sparse_detected != y.sparse_detected || x.ls_only != y.ls_only ||
        x.sparse_only != y.sparse_only)
      return false;
  }
  return true;
}

DefenderAblationOptions small_options() {
  DefenderAblationOptions opt;
  opt.topologies = 1;
  opt.trials_per_cell = 3;
  opt.clean_trials = 2;
  opt.anomaly_sparsity = {1};
  opt.defender_epsilons_ms = {0.0, 10.0};
  opt.families = {AttackFamily::kUnrestricted, AttackFamily::kConsistent};
  return opt;
}

TEST(DefenderAblation, SeriesHasTheDeclaredShape) {
  const DefenderAblationOptions opt = small_options();
  const AblationSeries s = run_defender_ablation(opt);
  EXPECT_EQ(s.kind, opt.kind);
  EXPECT_EQ(s.epsilons, opt.defender_epsilons_ms);
  ASSERT_EQ(s.cells.size(), opt.families.size() * opt.anomaly_sparsity.size());
  EXPECT_EQ(s.total_trials, opt.topologies * s.cells.size() *
                                opt.trials_per_cell);
  EXPECT_EQ(s.clean_trials, opt.topologies * opt.clean_trials);
  EXPECT_EQ(s.sparse_false_alarms.size(), opt.defender_epsilons_ms.size());
  for (const AblationCell& c : s.cells) {
    EXPECT_LE(c.attacks, opt.topologies * opt.trials_per_cell);
    EXPECT_LE(c.ls_detected, c.attacks);
    ASSERT_EQ(c.sparse_detected.size(), opt.defender_epsilons_ms.size());
    for (std::size_t e = 0; e < c.sparse_detected.size(); ++e) {
      EXPECT_LE(c.sparse_detected[e], c.attacks);
      // Separation counters partition the disagreements.
      EXPECT_LE(c.ls_only[e], c.ls_detected);
      EXPECT_LE(c.sparse_only[e], c.sparse_detected[e]);
    }
  }
}

TEST(DefenderAblation, BitwiseIdenticalAcrossThreadCounts) {
  DefenderAblationOptions opt = small_options();
  opt.threads = 1;
  const AblationSeries serial = run_defender_ablation(opt);
  opt.threads = 3;
  const AblationSeries threaded = run_defender_ablation(opt);
  EXPECT_TRUE(same_series(serial, threaded));
}

TEST(DefenderAblation, SeedChangesTheDraws) {
  DefenderAblationOptions opt = small_options();
  const AblationSeries a = run_defender_ablation(opt);
  opt.seed = opt.seed + 1;
  const AblationSeries b = run_defender_ablation(opt);
  // Same shape either way; the trial outcomes are free to move.
  EXPECT_EQ(a.total_trials, b.total_trials);
  EXPECT_EQ(a.cells.size(), b.cells.size());
}

TEST(DefenderAblation, UnrestrictedRegimeSeparatesTheDefenders) {
  // The pinned sparse-only regime (EXPERIMENTS.md "Defender ablation"): a
  // flat per-path +50 ms attack stays under the least-squares α in
  // projection but is unexplainable for the equality-mode (ε = 0) sparse
  // defender anchored at the anomaly-free prior.
  DefenderAblationOptions opt;
  opt.topologies = 2;
  opt.trials_per_cell = 12;
  opt.clean_trials = 4;
  opt.anomaly_sparsity = {1};
  opt.defender_epsilons_ms = {0.0};
  opt.families = {AttackFamily::kUnrestricted};
  const AblationSeries s = run_defender_ablation(opt);
  ASSERT_EQ(s.cells.size(), 1u);
  const AblationCell& c = s.cells[0];
  ASSERT_GT(c.attacks, 0u);
  EXPECT_EQ(c.ls_detected, 0u);
  EXPECT_GT(c.sparse_detected[0], 0u);
  EXPECT_GT(c.sparse_only[0], 0u);
  // Clean anomaly-plus-noise trials fire neither defender.
  EXPECT_EQ(s.ls_false_alarms, 0u);
  EXPECT_EQ(s.sparse_false_alarms[0], 0u);
}

}  // namespace
}  // namespace scapegoat
