// Tests for the Eq. 23 consistency detector and Theorem 3's dichotomy.

#include "detect/detector.hpp"

#include <gtest/gtest.h>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "tomography/estimator.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

TEST(Detector, CleanMeasurementsPass) {
  Rng rng(61);
  Scenario sc = Scenario::fig1(rng);
  const DetectionOutcome d =
      detect_scapegoating(sc.estimator(), sc.clean_measurements());
  EXPECT_FALSE(d.detected);
  EXPECT_NEAR(d.residual_norm1, 0.0, 1e-6);
}

TEST(Detector, SmallNoiseStaysBelowAlpha) {
  // Remark 4: randomness in delivery should not trip the α = 200 ms test.
  Rng rng(62);
  Scenario sc = Scenario::fig1(rng);
  Vector y = sc.clean_measurements();
  for (auto& yi : y) yi += rng.uniform(0.0, 3.0);  // small jitter
  const DetectionOutcome d = detect_scapegoating(sc.estimator(), y);
  EXPECT_FALSE(d.detected);
}

TEST(Detector, GrossInconsistencyIsFlagged) {
  Rng rng(63);
  Scenario sc = Scenario::fig1(rng);
  Vector y = sc.clean_measurements();
  y[16] += 1500.0;  // blast the attacker-free path
  const DetectionOutcome d = detect_scapegoating(sc.estimator(), y);
  EXPECT_TRUE(d.detected);
  EXPECT_GT(d.residual_norm1, 200.0);
}

TEST(Detector, ThresholdIsConfigurable) {
  Rng rng(64);
  Scenario sc = Scenario::fig1(rng);
  Vector y = sc.clean_measurements();
  y[0] += 100.0;
  const DetectionOutcome strict =
      detect_scapegoating(sc.estimator(), y, DetectorOptions{1e-3});
  EXPECT_TRUE(strict.detected);
  const DetectionOutcome lax =
      detect_scapegoating(sc.estimator(), y, DetectorOptions{1e9});
  EXPECT_FALSE(lax.detected);
  EXPECT_DOUBLE_EQ(strict.residual_norm1, lax.residual_norm1);
}

TEST(Detector, SquareRoutingMatrixIsBlind) {
  // Theorem 3: square invertible R reproduces any y′ exactly — detection is
  // impossible no matter how wild the manipulation.
  Graph g = ring(4);  // 4 links
  std::vector<Path> paths;
  for (LinkId l = 0; l < g.num_links(); ++l) {
    Path p;
    p.nodes = {g.link(l).u, g.link(l).v};
    p.links = {l};
    paths.push_back(p);
  }
  TomographyEstimator est(g, paths);
  ASSERT_TRUE(est.ok());
  ASSERT_EQ(est.num_paths(), est.num_links());

  Rng rng(65);
  Vector y(4);
  for (auto& yi : y) yi = rng.uniform(0.0, 5000.0);  // arbitrary garbage
  const DetectionOutcome d = detect_scapegoating(est, y);
  EXPECT_FALSE(d.detected);
  EXPECT_NEAR(d.residual_norm1, 0.0, 1e-6);
}

TEST(Detector, PerfectCutConsistentAttackInvisible) {
  Rng rng(66);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);
  const AttackResult r =
      chosen_victim_attack(ctx, {0}, ManipulationMode::kConsistent);
  ASSERT_TRUE(r.success);
  EXPECT_FALSE(detect_scapegoating(sc.estimator(), r.y_observed).detected);
}

TEST(Detector, ImperfectCutDamageMaxAttackVisible) {
  Rng rng(67);
  Scenario sc = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = sc.context(net.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {9});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(detect_scapegoating(sc.estimator(), r.y_observed).detected);
}

}  // namespace
}  // namespace scapegoat
