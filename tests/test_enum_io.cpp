// Round-trip and stream-output tests for the enum string conversions
// unified in the PR-3 API pass: robust::ErrorCode, robust::SolveMethod,
// LeastSquaresMethod and lp::SolveStatus.

#include <gtest/gtest.h>

#include <sstream>

#include "attack/sparse_aware.hpp"
#include "core/defender_ablation.hpp"
#include "linalg/backend.hpp"
#include "linalg/least_squares.hpp"
#include "lp/simplex.hpp"
#include "robust/degraded.hpp"
#include "robust/expected.hpp"
#include "service/options.hpp"
#include "tomography/estimator_interface.hpp"
#include "tomography/sparse_recovery.hpp"

namespace scapegoat {
namespace {

TEST(EnumIo, ErrorCodeRoundTrips) {
  for (robust::ErrorCode code :
       {robust::ErrorCode::kInvalidInput, robust::ErrorCode::kEmptyInput,
        robust::ErrorCode::kDimensionMismatch,
        robust::ErrorCode::kRankDeficient, robust::ErrorCode::kIllConditioned,
        robust::ErrorCode::kIterationLimit, robust::ErrorCode::kMissingData,
        robust::ErrorCode::kParseError, robust::ErrorCode::kIoError}) {
    const std::string s = robust::to_string(code);
    EXPECT_NE(s, "unknown");
    const auto back = robust::error_code_from_string(s);
    ASSERT_TRUE(back.has_value()) << s;
    EXPECT_EQ(*back, code);
  }
  EXPECT_FALSE(robust::error_code_from_string("bogus").has_value());
  EXPECT_FALSE(robust::error_code_from_string("").has_value());
}

TEST(EnumIo, ErrorCodeStreams) {
  std::ostringstream os;
  os << robust::ErrorCode::kRankDeficient;
  EXPECT_EQ(os.str(), "rank_deficient");
}

TEST(EnumIo, SolveMethodRoundTrips) {
  for (robust::SolveMethod m : {robust::SolveMethod::kFullRank,
                                robust::SolveMethod::kRegularizedFallback}) {
    const auto back = robust::solve_method_from_string(robust::to_string(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(robust::solve_method_from_string("qr").has_value());
  std::ostringstream os;
  os << robust::SolveMethod::kRegularizedFallback;
  EXPECT_EQ(os.str(), "regularized_fallback");
}

TEST(EnumIo, LeastSquaresMethodRoundTrips) {
  for (LeastSquaresMethod m :
       {LeastSquaresMethod::kQr, LeastSquaresMethod::kNormalEquations,
        LeastSquaresMethod::kCgls}) {
    const auto back = least_squares_method_from_string(to_string(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_EQ(to_string(LeastSquaresMethod::kQr), "qr");
  EXPECT_EQ(to_string(LeastSquaresMethod::kNormalEquations),
            "normal_equations");
  EXPECT_EQ(to_string(LeastSquaresMethod::kCgls), "cgls");
  EXPECT_FALSE(least_squares_method_from_string("cholesky").has_value());
  std::ostringstream os;
  os << LeastSquaresMethod::kQr;
  EXPECT_EQ(os.str(), "qr");
}

TEST(EnumIo, NumericBackendRoundTrips) {
  for (NumericBackend b : {NumericBackend::kAuto, NumericBackend::kDense,
                           NumericBackend::kSparse}) {
    const auto back = numeric_backend_from_string(to_string(b));
    ASSERT_TRUE(back.has_value()) << to_string(b);
    EXPECT_EQ(*back, b);
  }
  EXPECT_EQ(to_string(NumericBackend::kSparse), "sparse");
  EXPECT_FALSE(numeric_backend_from_string("csr").has_value());
  EXPECT_FALSE(numeric_backend_from_string("").has_value());
}

TEST(EnumIo, LpBackendRoundTrips) {
  for (lp::LpBackend b : {lp::LpBackend::kAuto, lp::LpBackend::kTableau,
                          lp::LpBackend::kRevised}) {
    const auto back = lp::lp_backend_from_string(lp::to_string(b));
    ASSERT_TRUE(back.has_value()) << lp::to_string(b);
    EXPECT_EQ(*back, b);
  }
  EXPECT_EQ(lp::to_string(lp::LpBackend::kRevised), "revised");
  EXPECT_FALSE(lp::lp_backend_from_string("dense").has_value());
  std::ostringstream os;
  os << lp::LpBackend::kTableau;
  EXPECT_EQ(os.str(), "tableau");
}

TEST(EnumIo, LpSolveStatusStreams) {
  std::ostringstream os;
  os << lp::SolveStatus::kOptimal << ' ' << lp::SolveStatus::kIterationLimit;
  EXPECT_EQ(os.str(), "optimal iteration_limit");
}

TEST(EnumIo, ServiceStateRoundTrips) {
  for (service::ServiceState s :
       {service::ServiceState::kHealthy, service::ServiceState::kDegraded,
        service::ServiceState::kShedding, service::ServiceState::kDraining,
        service::ServiceState::kStopped}) {
    const auto back = service::service_state_from_string(service::to_string(s));
    ASSERT_TRUE(back.has_value()) << service::to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_EQ(service::to_string(service::ServiceState::kShedding), "shedding");
  EXPECT_FALSE(service::service_state_from_string("overloaded").has_value());
  EXPECT_FALSE(service::service_state_from_string("").has_value());
}

TEST(EnumIo, ServiceAdmissionAndShedModeStrings) {
  EXPECT_EQ(service::to_string(service::Admission::kAdmitted), "admitted");
  EXPECT_EQ(service::to_string(service::Admission::kRejected), "rejected");
  EXPECT_EQ(service::to_string(service::Admission::kShed), "shed");
  EXPECT_EQ(service::to_string(service::Admission::kClosed), "closed");
  EXPECT_EQ(service::to_string(service::ShedPolicy::Mode::kOff), "off");
  EXPECT_EQ(service::to_string(service::ShedPolicy::Mode::kAuto), "auto");
  EXPECT_EQ(service::to_string(service::ShedPolicy::Mode::kPinned), "pinned");
}

TEST(EnumIo, EstimatorKindRoundTrips) {
  for (EstimatorKind k :
       {EstimatorKind::kLeastSquares, EstimatorKind::kSparseRecovery,
        EstimatorKind::kMulticastMle}) {
    const auto back = estimator_kind_from_string(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_EQ(to_string(EstimatorKind::kLeastSquares), "least_squares");
  EXPECT_EQ(to_string(EstimatorKind::kSparseRecovery), "sparse_recovery");
  EXPECT_EQ(to_string(EstimatorKind::kMulticastMle), "multicast_mle");
  EXPECT_FALSE(estimator_kind_from_string("l1").has_value());
  EXPECT_FALSE(estimator_kind_from_string("mle").has_value());
  EXPECT_FALSE(estimator_kind_from_string("").has_value());
  std::ostringstream os;
  os << EstimatorKind::kSparseRecovery;
  EXPECT_EQ(os.str(), "sparse_recovery");
}

TEST(EnumIo, ProbeModeRoundTrips) {
  for (simnet::ProbeMode m :
       {simnet::ProbeMode::kUnicast, simnet::ProbeMode::kMulticast}) {
    const auto back = simnet::probe_mode_from_string(simnet::to_string(m));
    ASSERT_TRUE(back.has_value()) << simnet::to_string(m);
    EXPECT_EQ(*back, m);
  }
  EXPECT_EQ(simnet::to_string(simnet::ProbeMode::kUnicast), "unicast");
  EXPECT_EQ(simnet::to_string(simnet::ProbeMode::kMulticast), "multicast");
  EXPECT_FALSE(simnet::probe_mode_from_string("broadcast").has_value());
  EXPECT_FALSE(simnet::probe_mode_from_string("").has_value());
  std::ostringstream os;
  os << simnet::ProbeMode::kMulticast;
  EXPECT_EQ(os.str(), "multicast");
}

TEST(EnumIo, LossAttackFamilyRoundTrips) {
  for (LossAttackFamily f :
       {LossAttackFamily::kSubtreeFraming, LossAttackFamily::kSplitFraming}) {
    const auto back = loss_attack_family_from_string(to_string(f));
    ASSERT_TRUE(back.has_value()) << to_string(f);
    EXPECT_EQ(*back, f);
  }
  EXPECT_EQ(to_string(LossAttackFamily::kSubtreeFraming), "subtree_framing");
  EXPECT_EQ(to_string(LossAttackFamily::kSplitFraming), "split_framing");
  EXPECT_FALSE(loss_attack_family_from_string("framing").has_value());
  EXPECT_FALSE(loss_attack_family_from_string("").has_value());
  std::ostringstream os;
  os << LossAttackFamily::kSubtreeFraming;
  EXPECT_EQ(os.str(), "subtree_framing");
}

TEST(EnumIo, SparseConstraintRoundTrips) {
  for (SparseConstraint c :
       {SparseConstraint::kEquality, SparseConstraint::kInfBall}) {
    const auto back = sparse_constraint_from_string(to_string(c));
    ASSERT_TRUE(back.has_value()) << to_string(c);
    EXPECT_EQ(*back, c);
  }
  EXPECT_EQ(to_string(SparseConstraint::kInfBall), "inf_ball");
  EXPECT_FALSE(sparse_constraint_from_string("l2_ball").has_value());
  std::ostringstream os;
  os << SparseConstraint::kEquality;
  EXPECT_EQ(os.str(), "equality");
}

TEST(EnumIo, LeakageScopeRoundTrips) {
  for (LeakageScope s :
       {LeakageScope::kAttackerPaths, LeakageScope::kAllPaths}) {
    const auto back = leakage_scope_from_string(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s);
  }
  EXPECT_EQ(to_string(LeakageScope::kAllPaths), "all_paths");
  EXPECT_FALSE(leakage_scope_from_string("everywhere").has_value());
  std::ostringstream os;
  os << LeakageScope::kAttackerPaths;
  EXPECT_EQ(os.str(), "attacker_paths");
}

TEST(EnumIo, AttackFamilyRoundTrips) {
  for (AttackFamily f :
       {AttackFamily::kUnrestricted, AttackFamily::kConsistent,
        AttackFamily::kSparseAware}) {
    const auto back = attack_family_from_string(to_string(f));
    ASSERT_TRUE(back.has_value()) << to_string(f);
    EXPECT_EQ(*back, f);
  }
  EXPECT_EQ(to_string(AttackFamily::kSparseAware), "sparse-aware");
  EXPECT_FALSE(attack_family_from_string("stealthy").has_value());
  EXPECT_FALSE(attack_family_from_string("").has_value());
  std::ostringstream os;
  os << AttackFamily::kConsistent;
  EXPECT_EQ(os.str(), "consistent");
}

TEST(EnumIo, ExpectedErrorMessage) {
  const robust::Expected<int> good(7);
  EXPECT_TRUE(good.error_message().empty());
  const robust::Expected<int> bad(
      robust::Error{robust::ErrorCode::kMissingData, "no probes arrived"});
  EXPECT_EQ(bad.error_message(), "missing_data: no probes arrived");
}

TEST(EnumIo, ExpectedMonadicOps) {
  const robust::Expected<int> good(21);
  const auto doubled = good.map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);

  const auto chained = good.and_then([](int v) -> robust::Expected<int> {
    if (v > 100) return robust::Error{robust::ErrorCode::kInvalidInput, "big"};
    return v + 1;
  });
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(*chained, 22);

  const robust::Expected<int> bad(
      robust::Error{robust::ErrorCode::kRankDeficient, "r < n"});
  const auto still_bad = bad.map([](int v) { return v * 2; });
  ASSERT_FALSE(still_bad.ok());
  EXPECT_EQ(still_bad.code(), robust::ErrorCode::kRankDeficient);
  const auto also_bad =
      bad.and_then([](int v) -> robust::Expected<double> { return v * 1.0; });
  ASSERT_FALSE(also_bad.ok());
  EXPECT_EQ(also_bad.error().message, "r < n");
  EXPECT_EQ(bad.value_or(-1), -1);
}

}  // namespace
}  // namespace scapegoat
