// Tests for the tomography estimator (Eq. 2) on the Fig. 1 network.

#include "tomography/estimator.hpp"

#include <gtest/gtest.h>

#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"
#include "util/random.hpp"

namespace scapegoat {
namespace {

TEST(Estimator, RecoversTrueMetricsExactly) {
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.num_paths(), 23u);
  EXPECT_EQ(est.num_links(), 10u);

  Rng rng(17);
  Vector x(10);
  for (auto& xi : x) xi = rng.uniform(1.0, 20.0);
  const Vector y = path_metrics(net.paths, x);
  EXPECT_TRUE(approx_equal(est.estimate(y), x, 1e-8));
}

TEST(Estimator, QrMatchesLiteralNormalEquations) {
  ExampleNetwork net = fig1_network();
  TomographyEstimator qr(net.graph, net.paths, LeastSquaresMethod::kQr);
  TomographyEstimator ne(net.graph, net.paths,
                         LeastSquaresMethod::kNormalEquations);
  ASSERT_TRUE(qr.ok());
  ASSERT_TRUE(ne.ok());

  Rng rng(18);
  Vector y(net.paths.size());
  for (auto& yi : y) yi = rng.uniform(0.0, 100.0);
  EXPECT_TRUE(approx_equal(qr.estimate(y), ne.estimate(y), 1e-7));
}

TEST(Estimator, CleanMeasurementsHaveZeroResidual) {
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  Rng rng(19);
  Vector x(10);
  for (auto& xi : x) xi = rng.uniform(1.0, 20.0);
  const Vector y = path_metrics(net.paths, x);
  EXPECT_NEAR(est.residual(y).norm1(), 0.0, 1e-7);
}

TEST(Estimator, InconsistentMeasurementsHaveNonzeroResidual) {
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  Rng rng(20);
  Vector x(10);
  for (auto& xi : x) xi = rng.uniform(1.0, 20.0);
  Vector y = path_metrics(net.paths, x);
  y[16] += 500.0;  // tamper with path 17 only
  EXPECT_GT(est.residual(y).norm1(), 100.0);
}

TEST(Estimator, PseudoInverseIsLeftInverse) {
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  const Matrix gr = est.pseudo_inverse() * est.r();
  EXPECT_TRUE(approx_equal(gr, Matrix::identity(10), 1e-8));
}

TEST(Estimator, RejectsUnidentifiablePathSet) {
  ExampleNetwork net = fig1_network();
  // Keep only 5 paths: rank < 10.
  std::vector<Path> few(net.paths.begin(), net.paths.begin() + 5);
  TomographyEstimator est(net.graph, few);
  EXPECT_FALSE(est.ok());
}

TEST(Estimator, ClassifiesEstimates) {
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  Vector x(10, 10.0);
  x[0] = 900.0;   // abnormal
  x[5] = 400.0;   // uncertain
  const Vector y = path_metrics(net.paths, x);
  const auto states = est.classify(y, StateThresholds{});
  EXPECT_EQ(states[0], LinkState::kAbnormal);
  EXPECT_EQ(states[5], LinkState::kUncertain);
  EXPECT_EQ(states[1], LinkState::kNormal);
}

TEST(RoutingMatrix, PathMetricsMatchesMatrixProduct) {
  ExampleNetwork net = fig1_network();
  const Matrix r = routing_matrix(net.graph, net.paths);
  Rng rng(23);
  Vector x(10);
  for (auto& xi : x) xi = rng.uniform(0.0, 50.0);
  EXPECT_TRUE(approx_equal(path_metrics(net.paths, x), r * x, 1e-10));
}

TEST(RoutingMatrix, PathsThroughNodesAndLinks) {
  ExampleNetwork net = fig1_network();
  // Paths through M1 = exactly the 13 paths containing link 1.
  const auto via_m1 = paths_through_nodes(net.paths, {net.m1});
  const auto via_link1 = paths_through_links(net.paths, {0});
  EXPECT_EQ(via_m1, via_link1);
  EXPECT_EQ(via_m1.size(), 13u);

  // Paths through both attackers' nodes: everything except path 17.
  const auto via_attackers = paths_through_nodes(net.paths, net.attackers);
  EXPECT_EQ(via_attackers.size(), 22u);
  for (std::size_t idx : via_attackers) EXPECT_NE(idx, 16u);
}

}  // namespace
}  // namespace scapegoat
