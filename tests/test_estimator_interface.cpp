// The abstract Estimator interface and its factory: both concrete families
// behind EstimatorKind, polymorphic cloning, the streaming fast path and
// the family-specific residual statistic the Eq. 23 detector consumes.

#include "tomography/estimator_interface.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "tomography/estimator.hpp"
#include "tomography/sparse_recovery.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class EstimatorInterfaceTest : public ::testing::Test {
 protected:
  EstimatorInterfaceTest() : rng_(31), scenario_(Scenario::fig1(rng_)) {}

  Rng rng_;
  Scenario scenario_;
};

TEST_F(EstimatorInterfaceTest, FactoryMakesLeastSquares) {
  const auto est = make_estimator(EstimatorKind::kLeastSquares,
                                  scenario_.graph(),
                                  scenario_.estimator().paths());
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->method(), EstimatorKind::kLeastSquares);
  ASSERT_TRUE(est->ok());
  // Identical answers to the concrete class it wraps.
  const Vector y = scenario_.clean_measurements();
  const TomographyEstimator direct(scenario_.graph(),
                                   scenario_.estimator().paths());
  const Vector a = est->estimate(y);
  const Vector b = direct.estimate(y);
  for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
}

TEST_F(EstimatorInterfaceTest, FactoryMakesSparseRecoveryWithOptions) {
  EstimatorOptions opt;
  opt.sparse_epsilon_ms = 10.0;
  opt.sparse_prior = scenario_.x_true();
  const auto est =
      make_estimator(EstimatorKind::kSparseRecovery, scenario_.graph(),
                     scenario_.estimator().paths(), opt);
  ASSERT_NE(est, nullptr);
  EXPECT_EQ(est->method(), EstimatorKind::kSparseRecovery);
  const auto* sparse = dynamic_cast<const SparseRecoveryEstimator*>(est.get());
  ASSERT_NE(sparse, nullptr);
  EXPECT_EQ(sparse->options().constraint, SparseConstraint::kInfBall);
  EXPECT_EQ(sparse->options().epsilon_ms, 10.0);
  // ε = 0 maps to the equality-constrained LP.
  EstimatorOptions exact;
  const auto eq = make_estimator(EstimatorKind::kSparseRecovery,
                                 scenario_.graph(),
                                 scenario_.estimator().paths(), exact);
  const auto* eq_sparse =
      dynamic_cast<const SparseRecoveryEstimator*>(eq.get());
  ASSERT_NE(eq_sparse, nullptr);
  EXPECT_EQ(eq_sparse->options().constraint, SparseConstraint::kEquality);
}

TEST_F(EstimatorInterfaceTest, CloneIsDeepAndPolymorphic) {
  for (const EstimatorKind kind :
       {EstimatorKind::kLeastSquares, EstimatorKind::kSparseRecovery,
        EstimatorKind::kMulticastMle}) {
    const auto est = make_estimator(kind, scenario_.graph(),
                                    scenario_.estimator().paths());
    const std::unique_ptr<Estimator> copy = est->clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->method(), kind);
    EXPECT_EQ(copy->num_paths(), est->num_paths());
    const Vector y = scenario_.clean_measurements();
    const Vector a = est->estimate(y);
    const Vector b = copy->estimate(y);
    for (std::size_t j = 0; j < a.size(); ++j)
      EXPECT_EQ(a[j], b[j]) << to_string(kind) << " link " << j;
  }
}

TEST_F(EstimatorInterfaceTest, StreamingEstimateUsesTheCachedPseudoInverse) {
  const Estimator& est = scenario_.estimator();
  ASSERT_EQ(est.method(), EstimatorKind::kLeastSquares);
  const Vector y = scenario_.clean_measurements();
  // The service fast path is literally G·y.
  const Vector fast = est.streaming_estimate(y);
  const Vector direct = est.pseudo_inverse() * y;
  for (std::size_t j = 0; j < fast.size(); ++j) EXPECT_EQ(fast[j], direct[j]);
}

TEST_F(EstimatorInterfaceTest, TryAppendPathGrowsEveryFamily) {
  // The scenario's unicast mesh is not a multicast tree, so the MLE family
  // exercises its documented pseudo-inverse fallback here.
  for (const EstimatorKind kind :
       {EstimatorKind::kLeastSquares, EstimatorKind::kSparseRecovery,
        EstimatorKind::kMulticastMle}) {
    EstimatorOptions opt;
    opt.sparse_prior = scenario_.x_true();
    const auto est = make_estimator(kind, scenario_.graph(),
                                    scenario_.estimator().paths(), opt);
    const std::size_t before = est->num_paths();
    // Re-announce the first measurement route (a redundancy-adding append).
    ASSERT_TRUE(est->try_append_path(est->paths()[0]).ok());
    EXPECT_EQ(est->num_paths(), before + 1);
    Vector y(est->num_paths(), 0.0);
    const Vector x = scenario_.x_true();
    for (std::size_t i = 0; i < est->num_paths(); ++i) {
      double sum = 0.0;
      for (const LinkId l : est->paths()[i].links) sum += x[l];
      y[i] = sum;
    }
    // Consistent measurements over the grown path set stay explainable.
    EXPECT_LT(est->residual_statistic(y), 1e-6);
  }
}

TEST_F(EstimatorInterfaceTest, DetectorRoutesTheFamilyResidualStatistic) {
  // The same tampered measurements, judged by both families through the
  // SAME detect_scapegoating call: least squares thresholds the raw ‖r‖₁
  // while sparse recovery first subtracts its per-path ε allowance.
  EstimatorOptions opt;
  opt.sparse_epsilon_ms = 40.0;
  opt.sparse_prior = scenario_.x_true();
  const auto sparse =
      make_estimator(EstimatorKind::kSparseRecovery, scenario_.graph(),
                     scenario_.estimator().paths(), opt);
  Vector y = scenario_.clean_measurements();
  Rng jitter(0xd17ull);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += jitter.uniform(0.0, 30.0);

  const DetectionOutcome ls = detect_scapegoating(scenario_.estimator(), y);
  const DetectionOutcome sp = detect_scapegoating(*sparse, y);
  // Sub-ε jitter on every path: fully inside the sparse defender's
  // measurement model, while the LS residual accumulates it across paths.
  EXPECT_NEAR(sp.residual_norm1, 0.0, 1e-9);
  EXPECT_FALSE(sp.detected);
  EXPECT_GT(ls.residual_norm1, sp.residual_norm1);
}

}  // namespace
}  // namespace scapegoat
