// Tests for the reconstructed Fig. 1 / Fig. 3 example networks — every
// constraint the paper's text states must hold on our reconstruction.

#include "topology/example_networks.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/cut.hpp"
#include "graph/connectivity.hpp"
#include "tomography/routing_matrix.hpp"

namespace scapegoat {
namespace {

TEST(Fig1, BasicShape) {
  ExampleNetwork net = fig1_network();
  EXPECT_EQ(net.graph.num_nodes(), 7u);   // M1-M3, A-D
  EXPECT_EQ(net.graph.num_links(), 10u);  // paper: 10 links
  EXPECT_EQ(net.paths.size(), 23u);       // paper: 23 measurement paths
  EXPECT_EQ(net.monitors.size(), 3u);
  EXPECT_EQ(net.attackers.size(), 2u);
}

TEST(Fig1, AllPathsAreValidMonitorToMonitor) {
  ExampleNetwork net = fig1_network();
  for (const Path& p : net.paths) {
    EXPECT_TRUE(is_valid_simple_path(net.graph, p));
    const bool src_is_monitor =
        std::find(net.monitors.begin(), net.monitors.end(), p.source()) !=
        net.monitors.end();
    const bool dst_is_monitor =
        std::find(net.monitors.begin(), net.monitors.end(),
                  p.destination()) != net.monitors.end();
    EXPECT_TRUE(src_is_monitor);
    EXPECT_TRUE(dst_is_monitor);
    EXPECT_NE(p.source(), p.destination());
  }
}

TEST(Fig1, StatedPathCompositionsHold) {
  ExampleNetwork net = fig1_network();
  // Paper: path 3 consists of links 1, 4, 7, 10 (1-based link ids).
  EXPECT_EQ(net.paths[2].links, (std::vector<LinkId>{0, 3, 6, 9}));
  // Paper: path 5 consists of links 8, 7, 5, 3.
  EXPECT_EQ(net.paths[4].links, (std::vector<LinkId>{7, 6, 4, 2}));
  // Paper: path 17 is formed by links 9 and 10.
  EXPECT_EQ(net.paths[16].links, (std::vector<LinkId>{8, 9}));
}

TEST(Fig1, AttackersControlLinks2Through8) {
  ExampleNetwork net = fig1_network();
  const auto controlled = net.graph.incident_links(net.attackers);
  // Paper: B and C can affect links 2-8 (1-based) = LinkIds 1..7.
  EXPECT_EQ(controlled, (std::vector<LinkId>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(Fig1, AttackersPerfectlyCutLink1) {
  ExampleNetwork net = fig1_network();
  EXPECT_TRUE(is_perfect_cut(net.paths, net.attackers, {0}));
  // 13 of the 23 paths contain link 1 (all paths with endpoint M1).
  std::size_t with_link1 = 0;
  for (const Path& p : net.paths)
    if (p.contains_link(0)) ++with_link1;
  EXPECT_EQ(with_link1, 13u);
}

TEST(Fig1, Link10IsImperfectlyCut) {
  ExampleNetwork net = fig1_network();
  // Path 17 (links 9,10) carries link 10 but neither attacker — imperfect.
  EXPECT_FALSE(is_perfect_cut(net.paths, net.attackers, {9}));
  const PresenceRatio pr =
      attack_presence_ratio(net.paths, net.attackers, {9});
  EXPECT_GT(pr.victim_paths, 0u);
  EXPECT_EQ(pr.victim_paths - pr.covered_paths, 1u);  // only path 17 escapes
}

TEST(Fig1, Path17AvoidsBothAttackers) {
  ExampleNetwork net = fig1_network();
  EXPECT_FALSE(net.paths[16].contains_any_node(net.attackers));
}

TEST(Fig1, RoutingMatrixIsIdentifiable) {
  ExampleNetwork net = fig1_network();
  const Matrix r = routing_matrix(net.graph, net.paths);
  EXPECT_EQ(r.rows(), 23u);
  EXPECT_EQ(r.cols(), 10u);
  EXPECT_TRUE(is_identifiable(r));
}

TEST(Fig1, NodeAIsOnlyReachableViaAttackersOrM1) {
  // The scapegoating narrative needs A enclosed by {M1, B, C}.
  ExampleNetwork net = fig1_network();
  std::vector<NodeId> nbrs;
  for (const Adjacent& a : net.graph.neighbors(net.a))
    nbrs.push_back(a.neighbor);
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<NodeId>{net.m1, net.b, net.c}));
}

TEST(Fig3, PerfectCutSeparatesVictim) {
  CutExample ex = fig3_perfect_cut();
  const Link victim = ex.graph.link(ex.victim_link);
  // Removing the attackers separates every monitor from... the victim link
  // remains reachable only through attackers on one side: check M1 side.
  EXPECT_TRUE(separates(ex.graph, ex.attackers, ex.monitors[0], victim.u));
}

TEST(Fig3, ImperfectCutHasBypassPath) {
  CutExample ex = fig3_imperfect_cut();
  const Link victim = ex.graph.link(ex.victim_link);
  // M1 can reach C without touching A1/A2 (via B).
  EXPECT_FALSE(separates(ex.graph, ex.attackers, ex.monitors[0], victim.u));
}

}  // namespace
}  // namespace scapegoat
