// The shared ExecutionPolicy base behind every experiment options struct:
// per-experiment defaults survive the refactor, the old field names keep
// working, generic code can slice any options struct to ExecutionPolicy&,
// and acquire_pool resolves global vs dedicated pools.

#include <gtest/gtest.h>

#include <memory>

#include "core/experiment.hpp"
#include "core/fault_experiment.hpp"
#include "util/args.hpp"
#include "util/execution.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {
namespace {

TEST(ExecutionPolicy, PerExperimentDefaultsPreserved) {
  // These are the pre-refactor per-struct defaults; they must not drift,
  // or every seeded experiment series silently changes.
  const PresenceRatioOptions fig7;
  EXPECT_EQ(fig7.threads, 0u);
  EXPECT_EQ(fig7.grain, 8u);
  EXPECT_EQ(fig7.seed, 7u);

  const SingleAttackerOptions fig8;
  EXPECT_EQ(fig8.threads, 0u);
  EXPECT_EQ(fig8.grain, 4u);
  EXPECT_EQ(fig8.seed, 8u);

  const DetectionOptionsExperiment fig9;
  EXPECT_EQ(fig9.threads, 0u);
  EXPECT_EQ(fig9.grain, 4u);
  EXPECT_EQ(fig9.seed, 9u);

  const FaultSweepOptions faults;
  EXPECT_EQ(faults.threads, 0u);
  EXPECT_EQ(faults.grain, 4u);
  EXPECT_EQ(faults.seed, 11u);
}

TEST(ExecutionPolicy, OldFieldNamesStillAssignable) {
  PresenceRatioOptions opt;
  opt.threads = 3;
  opt.grain = 16;
  opt.seed = 123;
  EXPECT_EQ(opt.threads, 3u);
  EXPECT_EQ(opt.grain, 16u);
  EXPECT_EQ(opt.seed, 123u);
}

TEST(ExecutionPolicy, SlicesToBaseReference) {
  FaultSweepOptions opt;
  ExecutionPolicy& exec = opt.execution();
  exec.seed = 99;
  exec.grain = 2;
  EXPECT_EQ(opt.seed, 99u);  // same sub-object, not a copy
  EXPECT_EQ(opt.grain, 2u);

  // Copying the trio between different experiments' options.
  PresenceRatioOptions other;
  other.execution() = opt.execution();
  EXPECT_EQ(other.seed, 99u);
  EXPECT_EQ(other.threads, opt.threads);
}

TEST(ExecutionPolicy, AcquirePoolGlobalVsDedicated) {
  ExecutionPolicy global_exec;  // threads == 0
  std::unique_ptr<ThreadPool> owned;
  ThreadPool& pool = acquire_pool(global_exec, owned);
  EXPECT_EQ(&pool, &ThreadPool::global());
  EXPECT_EQ(owned, nullptr);

  ExecutionPolicy dedicated{2, 4, 0};
  std::unique_ptr<ThreadPool> owned2;
  ThreadPool& pool2 = acquire_pool(dedicated, owned2);
  ASSERT_NE(owned2, nullptr);
  EXPECT_EQ(&pool2, owned2.get());
  EXPECT_EQ(pool2.size(), 2u);
}

TEST(ExecutionPolicy, ArgParserAppliesExecutionFlags) {
  const char* argv[] = {"prog", "--grain", "32", "--seed", "1234"};
  ArgParser args(5, argv);
  PresenceRatioOptions opt;
  args.apply_execution(opt);
  EXPECT_EQ(opt.grain, 32u);
  EXPECT_EQ(opt.seed, 1234u);
  EXPECT_EQ(opt.threads, 0u);  // stays on the (resized) global pool
  EXPECT_TRUE(args.errors().empty());
}

TEST(ExecutionPolicy, ArgParserLeavesDefaultsWhenFlagsAbsent) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  FaultSweepOptions opt;
  args.apply_execution(opt);
  EXPECT_EQ(opt.grain, 4u);
  EXPECT_EQ(opt.seed, 11u);
}

}  // namespace
}  // namespace scapegoat
