// Smoke tests over the Monte-Carlo experiment runners (Figs. 7-9) with tiny
// budgets: structural invariants, probability ranges, and the Theorem-3
// detection dichotomy.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace scapegoat {
namespace {

TEST(ExperimentSmoke, MakeScenarioIsSeedDeterministic) {
  Rng a(55), b(55);
  auto sa = make_scenario(TopologyKind::kWireline, a);
  auto sb = make_scenario(TopologyKind::kWireline, b);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sa->graph().num_links(), sb->graph().num_links());
  EXPECT_EQ(sa->estimator().num_paths(), sb->estimator().num_paths());
  EXPECT_TRUE(approx_equal(sa->x_true(), sb->x_true(), 0.0));
}

TEST(ExperimentSmoke, PresenceRatioSeriesInvariants) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 40;
  opt.seed = 1234;
  const PresenceRatioSeries s =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(s.kind, TopologyKind::kWireline);
  EXPECT_EQ(s.bins.size(), opt.bins + 1);
  std::size_t total = 0;
  for (const PresenceRatioBin& b : s.bins) {
    EXPECT_GE(b.trials, b.successes);
    EXPECT_GE(b.probability(), 0.0);
    EXPECT_LE(b.probability(), 1.0);
    total += b.trials;
  }
  EXPECT_EQ(total, s.total_trials);
  EXPECT_GT(s.total_trials, 0u);
  // Theorem 1: the exact-perfect-cut bin never fails.
  const PresenceRatioBin& perfect = s.bins.back();
  if (perfect.trials > 0) EXPECT_EQ(perfect.successes, perfect.trials);
}

TEST(ExperimentSmoke, SingleAttackerProbabilitiesInRange) {
  SingleAttackerOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 6;
  opt.seed = 99;
  const SingleAttackerResult r =
      run_single_attacker_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(r.trials, 6u);
  EXPECT_LE(r.max_damage_successes, r.trials);
  EXPECT_LE(r.obfuscation_successes, r.trials);
  EXPECT_GE(r.max_damage_probability(), r.obfuscation_probability() - 1.0);
}

TEST(ExperimentSmoke, DetectionDichotomyTinyRun) {
  DetectionOptionsExperiment opt;
  opt.topologies = 1;
  opt.successful_attacks_per_cell = 4;
  opt.max_trials_per_cell = 120;
  opt.seed = 77;
  const DetectionSeries s =
      run_detection_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(s.cells.size(), 6u);
  EXPECT_EQ(s.false_alarms, 0u);
  EXPECT_GT(s.clean_trials, 0u);
  for (const DetectionCell& c : s.cells) {
    EXPECT_LE(c.detected, c.attacks);
    if (c.attacks == 0) continue;
    if (c.perfect_cut) {
      // Theorem 3: consistent perfect-cut attacks are invisible.
      EXPECT_EQ(c.detected, 0u) << to_string(c.strategy);
    } else {
      // Damage-max imperfect-cut attacks leave large residuals.
      EXPECT_GT(c.detection_ratio(), 0.5) << to_string(c.strategy);
    }
  }
}

TEST(ExperimentSmoke, ToStringNames) {
  EXPECT_EQ(to_string(TopologyKind::kWireline), "wireline");
  EXPECT_EQ(to_string(TopologyKind::kWireless), "wireless");
  EXPECT_EQ(to_string(AttackStrategy::kChosenVictim), "chosen-victim");
  EXPECT_EQ(to_string(AttackStrategy::kMaxDamage), "maximum-damage");
  EXPECT_EQ(to_string(AttackStrategy::kObfuscation), "obfuscation");
}

}  // namespace
}  // namespace scapegoat
