// Smoke tests over the Monte-Carlo experiment runners (Figs. 7-9) with tiny
// budgets: structural invariants, probability ranges, and the Theorem-3
// detection dichotomy.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "core/fault_experiment.hpp"
#include "core/scenario.hpp"
#include "core/simulate.hpp"
#include "simnet/resilient_probing.hpp"

namespace scapegoat {
namespace {

TEST(ExperimentSmoke, MakeScenarioIsSeedDeterministic) {
  Rng a(55), b(55);
  auto sa = make_scenario(TopologyKind::kWireline, a);
  auto sb = make_scenario(TopologyKind::kWireline, b);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sa->graph().num_links(), sb->graph().num_links());
  EXPECT_EQ(sa->estimator().num_paths(), sb->estimator().num_paths());
  EXPECT_TRUE(approx_equal(sa->x_true(), sb->x_true(), 0.0));
}

TEST(ExperimentSmoke, PresenceRatioSeriesInvariants) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 40;
  opt.seed = 1234;
  const PresenceRatioSeries s =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(s.kind, TopologyKind::kWireline);
  EXPECT_EQ(s.bins.size(), opt.bins + 1);
  std::size_t total = 0;
  for (const PresenceRatioBin& b : s.bins) {
    EXPECT_GE(b.trials, b.successes);
    EXPECT_GE(b.probability(), 0.0);
    EXPECT_LE(b.probability(), 1.0);
    total += b.trials;
  }
  EXPECT_EQ(total, s.total_trials);
  EXPECT_GT(s.total_trials, 0u);
  // Theorem 1: the exact-perfect-cut bin never fails.
  const PresenceRatioBin& perfect = s.bins.back();
  if (perfect.trials > 0) EXPECT_EQ(perfect.successes, perfect.trials);
}

TEST(ExperimentSmoke, SingleAttackerProbabilitiesInRange) {
  SingleAttackerOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 6;
  opt.seed = 99;
  const SingleAttackerResult r =
      run_single_attacker_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(r.trials, 6u);
  EXPECT_LE(r.max_damage_successes, r.trials);
  EXPECT_LE(r.obfuscation_successes, r.trials);
  EXPECT_GE(r.max_damage_probability(), r.obfuscation_probability() - 1.0);
}

TEST(ExperimentSmoke, DetectionDichotomyTinyRun) {
  DetectionOptionsExperiment opt;
  opt.topologies = 1;
  opt.successful_attacks_per_cell = 4;
  opt.max_trials_per_cell = 120;
  opt.seed = 77;
  const DetectionSeries s =
      run_detection_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(s.cells.size(), 6u);
  EXPECT_EQ(s.false_alarms, 0u);
  EXPECT_GT(s.clean_trials, 0u);
  for (const DetectionCell& c : s.cells) {
    EXPECT_LE(c.detected, c.attacks);
    if (c.attacks == 0) continue;
    if (c.perfect_cut) {
      // Theorem 3: consistent perfect-cut attacks are invisible.
      EXPECT_EQ(c.detected, 0u) << to_string(c.strategy);
    } else {
      // Damage-max imperfect-cut attacks leave large residuals.
      EXPECT_GT(c.detection_ratio(), 0.5) << to_string(c.strategy);
    }
  }
}

TEST(ExperimentSmoke, ToStringNames) {
  EXPECT_EQ(to_string(TopologyKind::kWireline), "wireline");
  EXPECT_EQ(to_string(TopologyKind::kWireless), "wireless");
  EXPECT_EQ(to_string(AttackStrategy::kChosenVictim), "chosen-victim");
  EXPECT_EQ(to_string(AttackStrategy::kMaxDamage), "maximum-damage");
  EXPECT_EQ(to_string(AttackStrategy::kObfuscation), "obfuscation");
}

// Degenerate configurations must run to completion and report empty
// results — never divide by zero, index past an empty vector or hang.

TEST(DegenerateConfigs, ZeroTrialsYieldEmptySeries) {
  PresenceRatioOptions pr;
  pr.topologies = 1;
  pr.trials_per_topology = 0;
  const PresenceRatioSeries series =
      run_presence_ratio_experiment(TopologyKind::kWireline, pr);
  EXPECT_EQ(series.total_trials, 0u);
  for (const PresenceRatioBin& b : series.bins) {
    EXPECT_EQ(b.trials, 0u);
    EXPECT_EQ(b.probability(), 0.0);  // not NaN
  }

  SingleAttackerOptions sa;
  sa.topologies = 1;
  sa.trials_per_topology = 0;
  const SingleAttackerResult result =
      run_single_attacker_experiment(TopologyKind::kWireline, sa);
  EXPECT_EQ(result.trials, 0u);
  EXPECT_EQ(result.max_damage_probability(), 0.0);
}

TEST(DegenerateConfigs, ZeroTopologiesYieldEmptySeries) {
  PresenceRatioOptions pr;
  pr.topologies = 0;
  pr.trials_per_topology = 10;
  const PresenceRatioSeries series =
      run_presence_ratio_experiment(TopologyKind::kWireline, pr);
  EXPECT_EQ(series.total_trials, 0u);
}

TEST(DegenerateConfigs, FaultSweepWithNoWorkCompletes) {
  FaultSweepOptions no_trials;
  no_trials.topologies = 1;
  no_trials.trials_per_topology = 0;
  no_trials.loss_rates = {0.0, 0.5};
  const FaultSweepSeries a =
      run_fault_sweep(TopologyKind::kWireline, no_trials);
  EXPECT_EQ(a.total_trials, 0u);
  for (const FaultSweepCell& c : a.cells) {
    EXPECT_EQ(c.trials, 0u);
    EXPECT_EQ(c.solve_rate(), 0.0);          // not NaN
    EXPECT_EQ(c.measured_fraction(), 0.0);   // not NaN
  }

  FaultSweepOptions no_rates;
  no_rates.loss_rates = {};
  no_rates.topologies = 1;
  no_rates.trials_per_topology = 4;
  const FaultSweepSeries b = run_fault_sweep(TopologyKind::kWireline, no_rates);
  EXPECT_TRUE(b.cells.empty());
  EXPECT_EQ(b.total_trials, 0u);
}

TEST(DegenerateConfigs, ProbingEmptyPathSetIsANoOp) {
  Rng rng(401);
  Scenario sc = Scenario::fig1(rng);
  simnet::NullAdversary honest;
  Rng sim_rng(402);
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, sim_rng);
  robust::FaultInjector faults;
  simnet::ResilientProbeStats stats;
  const robust::DegradedMeasurement m = simnet::probe_with_retries(
      sim, {}, {}, faults, {}, &stats);
  EXPECT_EQ(m.y.size(), 0u);
  EXPECT_TRUE(m.complete());  // vacuously
  EXPECT_EQ(stats.probes_sent, 0u);
  EXPECT_EQ(stats.paths_missing, 0u);
}

TEST(DegenerateConfigs, SinglePathMeasurementFlowsThroughPipeline) {
  Rng rng(403);
  Scenario sc = Scenario::fig1(rng);
  const auto& paths = sc.estimator().paths();
  const std::vector<Path> one_path(paths.begin(), paths.begin() + 1);

  simnet::NullAdversary honest;
  Rng sim_rng(404);
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, sim_rng);
  robust::FaultInjector faults;
  const robust::DegradedMeasurement m =
      simnet::probe_with_retries(sim, one_path, {}, faults, {});
  ASSERT_EQ(m.y.size(), 1u);
  ASSERT_TRUE(m.complete());

  // One path cannot identify Fig. 1's links: the degraded solver must land
  // on the regularized fallback, not crash.
  Matrix r1(1, sc.estimator().r().cols());
  for (std::size_t c = 0; c < r1.cols(); ++c) r1(0, c) = sc.estimator().r()(0, c);
  const auto est = robust::degraded_estimate(r1, m);
  ASSERT_TRUE(est.ok()) << est.error().to_string();
  EXPECT_EQ(est->method, robust::SolveMethod::kRegularizedFallback);
  EXPECT_EQ(est->paths_used, 1u);
}

}  // namespace
}  // namespace scapegoat
