// Chaos harness for the fault-injection layer: probes traverse the packet
// simulator under deterministic fault schedules, retries degrade
// unmeasured paths to missing, and the estimator/detector pipeline must
// survive every sweep cell with a structured status — no aborts, no NaNs,
// bitwise-identical aggregates at 1/2/4/8 worker threads (the seed-split
// contract of DESIGN.md "Threading model" extended to the fault plane).

#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "core/fault_experiment.hpp"
#include "core/recovery.hpp"
#include "core/scenario.hpp"
#include "core/simulate.hpp"
#include "detect/detector.hpp"
#include "robust/degraded.hpp"
#include "simnet/resilient_probing.hpp"

namespace scapegoat {
namespace {

// ----------------------------------------------------- resilient probing --

TEST(ResilientProbing, FaultFreeRunMeasuresEveryPathExactly) {
  Rng rng(21);
  Scenario sc = Scenario::fig1(rng);
  simnet::NullAdversary honest;
  Rng sim_rng(22);
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, sim_rng);

  robust::FaultInjector no_faults;
  robust::RetryPolicy policy;
  simnet::ResilientProbeStats stats;
  const robust::DegradedMeasurement m = simnet::probe_with_retries(
      sim, sc.estimator().paths(), {}, no_faults, policy, &stats);

  ASSERT_TRUE(m.complete());
  EXPECT_EQ(stats.attempts_used, 1u);  // nothing to retry
  EXPECT_EQ(stats.paths_missing, 0u);
  EXPECT_EQ(stats.probes_lost, 0u);
  const Vector y = sc.clean_measurements();
  for (std::size_t p = 0; p < y.size(); ++p)
    EXPECT_NEAR(m.y[p], y[p], 1e-9) << "path " << p;
}

TEST(ResilientProbing, TotalOutageDegradesToMissingNotGarbage) {
  Rng rng(31);
  Scenario sc = Scenario::fig1(rng);
  simnet::NullAdversary honest;
  Rng sim_rng(32);
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, sim_rng);

  robust::FaultSpec spec;
  spec.probe_loss_rate = 1.0;  // nothing ever arrives
  robust::FaultInjector faults(spec, 5);
  robust::RetryPolicy policy;
  policy.max_retries = 2;
  simnet::ResilientProbeStats stats;
  const robust::DegradedMeasurement m = simnet::probe_with_retries(
      sim, sc.estimator().paths(), {}, faults, policy, &stats);

  EXPECT_EQ(m.num_measured(), 0u);
  EXPECT_EQ(stats.paths_missing, sc.estimator().paths().size());
  EXPECT_EQ(stats.attempts_used, policy.attempts());

  // The estimator reports a structured error, never a crash.
  const auto est = robust::degraded_estimate(sc.estimator().r(), m);
  ASSERT_FALSE(est.ok());
  EXPECT_EQ(est.code(), robust::ErrorCode::kEmptyInput);
}

TEST(ResilientProbing, RetriesRecoverLossyPaths) {
  Rng rng(41);
  Scenario sc = Scenario::fig1(rng);
  simnet::NullAdversary honest;
  Rng sim_rng(42);
  simnet::Simulator sim(sc.graph(), link_models(sc), honest, sim_rng);

  robust::FaultSpec spec;
  spec.probe_loss_rate = 0.6;  // single probes often vanish
  robust::FaultInjector faults(spec, 17);
  robust::RetryPolicy none;
  none.max_retries = 0;
  robust::RetryPolicy generous;
  generous.max_retries = 4;

  simnet::ResilientProbeStats one_shot, retried;
  const auto m0 = simnet::probe_with_retries(sim, sc.estimator().paths(), {},
                                             faults, none, &one_shot);
  const auto m4 = simnet::probe_with_retries(sim, sc.estimator().paths(), {},
                                             faults, generous, &retried);

  EXPECT_GE(m4.num_measured(), m0.num_measured());
  EXPECT_GT(retried.paths_recovered, 0u);
  EXPECT_EQ(retried.paths_missing + m4.num_measured(),
            sc.estimator().paths().size());
}

TEST(ResilientProbing, ScheduleIsAPureFunctionOfSeeds) {
  // Two independent simulators and probing passes over the same scenario
  // must agree bit for bit: fault fates depend only on (seed, path, probe,
  // round), not on simulator state or call history.
  Rng rng(51);
  Scenario sc = Scenario::fig1(rng);
  robust::FaultSpec spec;
  spec.probe_loss_rate = 0.3;
  spec.duplicate_rate = 0.1;
  spec.clock_jitter_ms = 2.0;
  robust::RetryPolicy policy;
  policy.max_retries = 1;

  auto run_once = [&](std::uint64_t sim_seed) {
    simnet::NullAdversary honest;
    Rng sim_rng(sim_seed);
    simnet::Simulator sim(sc.graph(), link_models(sc), honest, sim_rng);
    robust::FaultInjector faults(spec, 77);
    return simnet::probe_with_retries(sim, sc.estimator().paths(), {}, faults,
                                      policy);
  };

  const auto a = run_once(1000);
  const auto b = run_once(1000);
  ASSERT_EQ(a.measured, b.measured);
  for (std::size_t p = 0; p < a.y.size(); ++p) {
    if (a.measured[p]) {
      EXPECT_EQ(a.y[p], b.y[p]) << "path " << p;
    }
  }
}

// ---------------------------------------------------- degraded detection --

TEST(DegradedDetection, MatchesClassicDetectorOnCompleteData) {
  Rng rng(61);
  Scenario sc = Scenario::fig1(rng);
  Vector y = sc.clean_measurements();
  y[0] += 500.0;  // inconsistent bump the redundancy cannot explain

  const DetectionOutcome classic =
      detect_scapegoating(sc.estimator(), y);
  const auto degraded = detect_scapegoating_degraded(
      sc.estimator(), robust::DegradedMeasurement::all_measured(y));
  ASSERT_TRUE(degraded.ok());
  EXPECT_EQ(degraded->detected, classic.detected);
  EXPECT_NEAR(degraded->residual_norm1, classic.residual_norm1, 1e-6);
  EXPECT_EQ(degraded->method, robust::SolveMethod::kFullRank);
  EXPECT_EQ(degraded->paths_used, y.size());
}

TEST(DegradedDetection, HonestNetworkWithMissingRowsStaysQuiet) {
  Rng rng(71);
  Scenario sc = Scenario::fig1(rng);
  robust::DegradedMeasurement m =
      robust::DegradedMeasurement::all_measured(sc.clean_measurements());
  m.measured[1] = m.measured[4] = false;  // two rows never materialized

  const auto out = detect_scapegoating_degraded(sc.estimator(), m);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->detected);
  EXPECT_NEAR(out->residual_norm1, 0.0, 1e-6);
  EXPECT_EQ(out->paths_used, m.num_measured());
}

// -------------------------------------------------- checked experiment --

TEST(CheckedApis, TryEstimateRejectsWrongShape) {
  Rng rng(81);
  Scenario sc = Scenario::fig1(rng);
  const auto bad = sc.estimator().try_estimate(Vector{1.0, 2.0});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), robust::ErrorCode::kDimensionMismatch);

  const auto good = sc.estimator().try_estimate(sc.clean_measurements());
  ASSERT_TRUE(good.ok());
  for (std::size_t l = 0; l < sc.x_true().size(); ++l)
    EXPECT_NEAR((*good)[l], sc.x_true()[l], 1e-6);
}

TEST(CheckedApis, TryAssessRecoveryRejectsFailedAttack) {
  Rng rng(91);
  Scenario sc = Scenario::fig1(rng);
  AttackContext ctx = sc.context({0});
  AttackResult failed;  // success == false
  Rng rec_rng(92);
  const auto out = try_assess_recovery(sc, ctx, failed, {}, rec_rng);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.code(), robust::ErrorCode::kInvalidInput);
}

TEST(CheckedApis, TryAssessRecoveryRejectsMisshapenResult) {
  Rng rng(93);
  Scenario sc = Scenario::fig1(rng);
  AttackContext ctx = sc.context({0});
  AttackResult attack;
  attack.success = true;  // but sized for some other topology
  attack.states.resize(3, LinkState::kNormal);
  attack.x_estimated = Vector(3);
  Rng rec_rng(94);
  const auto out = try_assess_recovery(sc, ctx, attack, {}, rec_rng);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.code(), robust::ErrorCode::kDimensionMismatch);
}

// --------------------------------------------------------- chaos sweep --

FaultSweepOptions small_sweep() {
  FaultSweepOptions opt;
  opt.loss_rates = {0.0, 0.01, 0.05, 0.2};
  opt.topologies = 1;
  opt.trials_per_topology = 10;
  opt.probes_per_path = 2;
  opt.retry.max_retries = 2;
  opt.seed = 2024;
  return opt;
}

TEST(FaultSweep, EveryTrialEndsInExactlyOneStatus) {
  const FaultSweepSeries s =
      run_fault_sweep(TopologyKind::kWireline, small_sweep());
  ASSERT_EQ(s.cells.size(), 4u);
  EXPECT_GT(s.total_trials, 0u);
  for (const FaultSweepCell& c : s.cells) {
    EXPECT_EQ(c.trials, 10u);
    EXPECT_EQ(c.full_rank + c.fallback + c.unsolvable, c.trials)
        << "loss rate " << c.loss_rate;
    EXPECT_LE(c.paths_measured, c.paths_total);
    EXPECT_TRUE(std::isfinite(c.mean_abs_error_ms));
    EXPECT_TRUE(std::isfinite(c.max_abs_error_ms));
  }
}

TEST(FaultSweep, LosslessCellIsExactAndSilent) {
  const FaultSweepSeries s =
      run_fault_sweep(TopologyKind::kWireline, small_sweep());
  const FaultSweepCell& clean = s.cells.front();
  ASSERT_EQ(clean.loss_rate, 0.0);
  EXPECT_EQ(clean.full_rank, clean.trials);  // nothing ever degrades
  EXPECT_EQ(clean.unsolvable, 0u);
  EXPECT_DOUBLE_EQ(clean.measured_fraction(), 1.0);
  EXPECT_LT(clean.mean_abs_error_ms, 1e-6);  // exact recovery, no faults
  EXPECT_EQ(clean.alarms, 0u);               // honest network, no alarms
}

TEST(FaultSweep, ErrorGrowthStaysBounded) {
  const FaultSweepSeries s =
      run_fault_sweep(TopologyKind::kWireline, small_sweep());
  for (const FaultSweepCell& c : s.cells) {
    // Link metrics are U[1,20] ms; even the regularized fallback must not
    // blow the per-link error past the metric scale's order of magnitude.
    EXPECT_LT(c.mean_abs_error_ms, 100.0) << "loss rate " << c.loss_rate;
    // Retries keep the pipeline solving at every swept rate.
    EXPECT_GT(c.solve_rate(), 0.5) << "loss rate " << c.loss_rate;
  }
}

TEST(FaultSweep, BitwiseIdenticalAcrossThreadCounts) {
  FaultSweepOptions opt = small_sweep();
  opt.threads = 1;
  const FaultSweepSeries reference =
      run_fault_sweep(TopologyKind::kWireline, opt);
  for (std::size_t threads : {2u, 4u, 8u}) {
    opt.threads = threads;
    const FaultSweepSeries run = run_fault_sweep(TopologyKind::kWireline, opt);
    ASSERT_EQ(run.cells.size(), reference.cells.size());
    EXPECT_EQ(run.total_trials, reference.total_trials);
    for (std::size_t c = 0; c < run.cells.size(); ++c) {
      const FaultSweepCell& a = run.cells[c];
      const FaultSweepCell& b = reference.cells[c];
      EXPECT_EQ(a.trials, b.trials) << threads << " threads, cell " << c;
      EXPECT_EQ(a.full_rank, b.full_rank) << threads << " threads, cell " << c;
      EXPECT_EQ(a.fallback, b.fallback) << threads << " threads, cell " << c;
      EXPECT_EQ(a.unsolvable, b.unsolvable)
          << threads << " threads, cell " << c;
      EXPECT_EQ(a.paths_measured, b.paths_measured)
          << threads << " threads, cell " << c;
      EXPECT_EQ(a.alarms, b.alarms) << threads << " threads, cell " << c;
      // Bitwise, not approximate: the fold is serial and seed-split.
      EXPECT_EQ(a.mean_abs_error_ms, b.mean_abs_error_ms)
          << threads << " threads, cell " << c;
      EXPECT_EQ(a.max_abs_error_ms, b.max_abs_error_ms)
          << threads << " threads, cell " << c;
    }
  }
}

TEST(FaultSweep, GrainSizeDoesNotChangeResults) {
  FaultSweepOptions opt = small_sweep();
  opt.threads = 4;
  opt.grain = 1;
  const FaultSweepSeries fine = run_fault_sweep(TopologyKind::kWireline, opt);
  opt.grain = 16;
  const FaultSweepSeries coarse = run_fault_sweep(TopologyKind::kWireline, opt);
  ASSERT_EQ(fine.cells.size(), coarse.cells.size());
  for (std::size_t c = 0; c < fine.cells.size(); ++c) {
    EXPECT_EQ(fine.cells[c].full_rank, coarse.cells[c].full_rank);
    EXPECT_EQ(fine.cells[c].mean_abs_error_ms,
              coarse.cells[c].mean_abs_error_ms);
  }
}

TEST(FaultSweep, SurvivesCompoundFaults) {
  FaultSweepOptions opt = small_sweep();
  opt.loss_rates = {0.1};
  opt.faults.duplicate_rate = 0.1;
  opt.faults.reorder_rate = 0.1;
  opt.faults.clock_jitter_ms = 1.0;
  opt.faults.monitor_outage_rate = 0.05;
  opt.faults.link_failure_rate = 0.02;
  opt.retry.max_retries = 3;
  opt.retry.probe_deadline_ms = 500.0;

  const FaultSweepSeries s = run_fault_sweep(TopologyKind::kWireline, opt);
  ASSERT_EQ(s.cells.size(), 1u);
  const FaultSweepCell& c = s.cells.front();
  EXPECT_EQ(c.full_rank + c.fallback + c.unsolvable, c.trials);
  EXPECT_TRUE(std::isfinite(c.mean_abs_error_ms));
  EXPECT_TRUE(std::isfinite(c.max_abs_error_ms));
}

}  // namespace
}  // namespace scapegoat
