// Structural checks on the Fig. 3 didactic topologies.
//
// Note these examples are deliberately NOT identifiable deployments: in the
// perfect-cut variant the victim's endpoints C and D are interior degree-2/3
// nodes, and making either a monitor (as identifiability would require)
// immediately creates an attacker-free one-hop measurement of the victim —
// i.e. full identifiability and a perfect cut are mutually exclusive here.
// That tension is itself a finding the paper's §VI monitor-placement
// discussion gestures at; the tests below verify the cut structure on the
// natural path sets.

#include <gtest/gtest.h>

#include "attack/cut.hpp"
#include "graph/paths.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

// Every simple path between distinct monitors, up to a generous length cap.
std::vector<Path> all_monitor_paths(const CutExample& ex) {
  std::vector<Path> out;
  for (std::size_t i = 0; i < ex.monitors.size(); ++i) {
    for (std::size_t j = i + 1; j < ex.monitors.size(); ++j) {
      auto paths = enumerate_simple_paths(ex.graph, ex.monitors[i],
                                          ex.monitors[j],
                                          PathEnumerationOptions{10, 1000});
      out.insert(out.end(), paths.begin(), paths.end());
    }
  }
  return out;
}

TEST(Fig3, PerfectVariantCutsVictimOnEveryMonitorPath) {
  CutExample ex = fig3_perfect_cut();
  const auto paths = all_monitor_paths(ex);
  ASSERT_FALSE(paths.empty());
  EXPECT_TRUE(is_perfect_cut(paths, ex.attackers, {ex.victim_link}));
  // And the cut is meaningful: some monitor path does carry the victim.
  const PresenceRatio pr =
      attack_presence_ratio(paths, ex.attackers, {ex.victim_link});
  EXPECT_GT(pr.victim_paths, 0u);
  EXPECT_EQ(pr.covered_paths, pr.victim_paths);
}

TEST(Fig3, ImperfectVariantHasAnUncoveredVictimPath) {
  CutExample ex = fig3_imperfect_cut();
  const auto paths = all_monitor_paths(ex);
  ASSERT_FALSE(paths.empty());
  EXPECT_FALSE(is_perfect_cut(paths, ex.attackers, {ex.victim_link}));
  const PresenceRatio pr =
      attack_presence_ratio(paths, ex.attackers, {ex.victim_link});
  EXPECT_GT(pr.victim_paths, pr.covered_paths);
  EXPECT_GT(pr.covered_paths, 0u);  // ...but attackers do sit on some
}

TEST(Fig3, IdentifiabilityAndPerfectCutAreMutuallyExclusiveHere) {
  // Promote C (a victim endpoint) to monitor, as identifiability of the
  // victim link would eventually force: the one-hop path C-D carries the
  // victim and no attacker — the perfect cut is gone.
  CutExample ex = fig3_perfect_cut();
  const NodeId c = ex.graph.link(ex.victim_link).u;
  const NodeId d = ex.graph.link(ex.victim_link).v;
  std::vector<NodeId> monitors = ex.monitors;
  monitors.push_back(c);
  std::vector<Path> paths;
  Path one_hop;
  one_hop.nodes = {c, d};
  // c-d direct hop reaches monitor M3 via D? No — make the path c → d → M3.
  one_hop.links = {ex.victim_link};
  // d is not a monitor; extend to M3 (node 2) via link D-M3.
  one_hop.nodes.push_back(2);
  one_hop.links.push_back(*ex.graph.find_link(d, 2));
  ASSERT_TRUE(is_valid_simple_path(ex.graph, one_hop));
  paths.push_back(one_hop);
  EXPECT_FALSE(is_perfect_cut(paths, ex.attackers, {ex.victim_link}));
}

}  // namespace
}  // namespace scapegoat
