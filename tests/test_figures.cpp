// Tests for the figure drivers (Figs. 2, 4, 5, 6): each must reproduce the
// paper's qualitative claims on the Fig. 1 network.

#include "core/figures.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace scapegoat {
namespace {

TEST(Fig2, ThreeDistinctProfiles) {
  const Fig2Result r = run_fig2();
  ASSERT_EQ(r.chosen_victim.size(), 10u);
  // Profiles must differ between strategies.
  EXPECT_FALSE(approx_equal(r.chosen_victim, r.obfuscation, 1.0));
  EXPECT_FALSE(approx_equal(r.max_damage, r.obfuscation, 1.0));
  // Obfuscation: everything inside the band — no estimate above b_u.
  for (double x : r.obfuscation) EXPECT_LE(x, 800.0 + 1e-6);
  std::ostringstream os;
  print_fig2(r, os);
  EXPECT_NE(os.str().find("Fig. 2"), std::string::npos);
}

TEST(Fig4, MatchesPaperNarrative) {
  const Fig4Result r = run_fig4();
  ASSERT_TRUE(r.attack.success);
  // The victim (paper link 10, id 9) was NOT perfectly cut, yet the attack
  // succeeded — the paper's headline for Fig. 4.
  EXPECT_FALSE(r.perfect_cut);
  EXPECT_GT(r.attack.x_estimated[9], 800.0);
  EXPECT_EQ(r.attack.states[9], LinkState::kAbnormal);
  // Only the victim exceeds the abnormal threshold.
  for (LinkId l = 0; l < 9; ++l)
    EXPECT_NE(r.attack.states[l], LinkState::kAbnormal) << "link " << l;
  // Attacker links look normal.
  for (LinkId l = 1; l <= 7; ++l)
    EXPECT_EQ(r.attack.states[l], LinkState::kNormal);
  // Average end-to-end delay is in the high-hundreds/low-thousands regime
  // (paper: 820.87 ms with their solver; the LP damage-max lands higher).
  EXPECT_GT(r.avg_path_delay, 500.0);
  EXPECT_LT(r.avg_path_delay, 2000.0);
  // Theorem 3: the imperfect-cut attack is detectable.
  EXPECT_TRUE(r.detection.detected);
  std::ostringstream os;
  print_fig4(r, os);
  EXPECT_NE(os.str().find("DETECTED"), std::string::npos);
}

TEST(Fig5, MaxDamageBeatsFig4AndFlagsOnlyVictims) {
  const Fig4Result f4 = run_fig4();
  const Fig5Result f5 = run_fig5();
  ASSERT_TRUE(f5.attack.success);
  // The paper's comparison: maximum-damage yields the highest average
  // end-to-end delay of all chosen-victim attacks.
  EXPECT_GE(f5.attack.damage + 1e-6, f4.attack.damage);
  for (LinkId v : f5.attack.victims)
    EXPECT_EQ(f5.attack.states[v], LinkState::kAbnormal);
  // Attacker links (ids 1..7) stay normal.
  for (LinkId l = 1; l <= 7; ++l)
    EXPECT_EQ(f5.attack.states[l], LinkState::kNormal);
  // Non-victim links never cross b_u (collateral policy).
  for (LinkId l = 0; l < 10; ++l) {
    const bool is_victim =
        std::find(f5.attack.victims.begin(), f5.attack.victims.end(), l) !=
        f5.attack.victims.end();
    if (!is_victim) EXPECT_NE(f5.attack.states[l], LinkState::kAbnormal);
  }
  EXPECT_GT(f5.avg_path_delay, 800.0);
  std::ostringstream os;
  print_fig5(f5, os);
  EXPECT_NE(os.str().find("per-victim damages"), std::string::npos);
}

TEST(Fig6, AllLinksUncertain) {
  const Fig6Result r = run_fig6();
  ASSERT_TRUE(r.attack.success);
  EXPECT_EQ(r.uncertain_links, 10u);  // paper: every link inside the band
  EXPECT_GT(r.attack.damage, 0.0);
  std::ostringstream os;
  print_fig6(r, os);
  EXPECT_NE(os.str().find("10 / 10"), std::string::npos);
}

TEST(Figures, DeterministicAcrossRuns) {
  const Fig4Result a = run_fig4();
  const Fig4Result b = run_fig4();
  ASSERT_TRUE(a.attack.success);
  EXPECT_TRUE(approx_equal(a.attack.x_estimated, b.attack.x_estimated, 0.0));
  EXPECT_DOUBLE_EQ(a.attack.damage, b.attack.damage);
}

}  // namespace
}  // namespace scapegoat
