// Golden-figure regression: pins the CRC-32 fold fingerprints
// (testkit/golden.hpp) of fixed small Fig. 7 / Fig. 8 / Fig. 9 and
// fault-sweep configs, at 1 and 4 threads. Two things are locked at once:
//   * cross-thread-count bitwise determinism (fingerprints agree at 1 and 4
//     threads — the DESIGN.md §7 contract, here over the full serialized
//     fold, not per-field spot checks);
//   * the fold values themselves — a refactor of the estimator, the LP, the
//     attack strategies, or the fold order cannot silently re-baseline the
//     paper's figures. An intentional behavior change must update the
//     constants below, which makes re-baselining a reviewed diff.
//
// The configs deliberately reuse the sizes of test_parallel_determinism so
// the runtime cost stays in the same budget CI already pays.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.hpp"
#include "core/fault_experiment.hpp"
#include "linalg/backend.hpp"
#include "testkit/golden.hpp"

namespace scapegoat {
namespace {

// Pinned fold fingerprints (capture: run this suite and copy the "actual"
// value from the failure message — there is intentionally no capture mode).
constexpr std::uint32_t kFig7Golden = 0x9cbd0103u;
constexpr std::uint32_t kFig8Golden = 0xe31d7a77u;
constexpr std::uint32_t kFig9Golden = 0x65a829d6u;
constexpr std::uint32_t kFaultSweepGolden = 0x4bc7b945u;

constexpr std::size_t kThreadCounts[] = {1, 4};

TEST(GoldenFigures, Fig7PresenceRatioFingerprint) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 48;
  opt.seed = 1234;
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    const std::uint32_t fp = testkit::fingerprint(
        run_presence_ratio_experiment(TopologyKind::kWireline, opt));
    EXPECT_EQ(fp, kFig7Golden) << "at " << threads << " threads";
  }
}

TEST(GoldenFigures, Fig8SingleAttackerFingerprint) {
  SingleAttackerOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 10;
  opt.seed = 99;
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    const std::uint32_t fp = testkit::fingerprint(
        run_single_attacker_experiment(TopologyKind::kWireline, opt));
    EXPECT_EQ(fp, kFig8Golden) << "at " << threads << " threads";
  }
}

TEST(GoldenFigures, Fig9DetectionFingerprint) {
  DetectionOptionsExperiment opt;
  opt.topologies = 1;
  opt.successful_attacks_per_cell = 3;
  opt.max_trials_per_cell = 96;
  opt.seed = 77;
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    const std::uint32_t fp = testkit::fingerprint(
        run_detection_experiment(TopologyKind::kWireline, opt));
    EXPECT_EQ(fp, kFig9Golden) << "at " << threads << " threads";
  }
}

// Force-enabling the sparse backend for matrix–vector PRODUCTS must leave
// every figure fingerprint bit-identical: CSR SpMV accumulates each row in
// the same column order as the dense row-dot, and the skipped terms are
// exact ±0.0 products that cannot change a running sum (the bitwise
// contract documented in linalg/sparse_matrix.hpp). The iterative SOLVER
// slot deliberately stays on kAuto: CGLS only carries a tolerance contract,
// and at these sizes the auto threshold (BackendPolicy::iterative_min_cells)
// keeps the figures on dense QR — so the figures are dense-solved,
// sparse-multiplied, and the goldens above need no re-pin.
TEST(GoldenFigures, SparseProductsKeepFingerprintsBitwise) {
  const ScopedBackendOverride force_sparse_products(NumericBackend::kSparse,
                                                    NumericBackend::kAuto);
  {
    PresenceRatioOptions opt;
    opt.topologies = 1;
    opt.trials_per_topology = 48;
    opt.seed = 1234;
    opt.threads = 1;
    EXPECT_EQ(testkit::fingerprint(run_presence_ratio_experiment(
                  TopologyKind::kWireline, opt)),
              kFig7Golden);
  }
  {
    SingleAttackerOptions opt;
    opt.topologies = 1;
    opt.trials_per_topology = 10;
    opt.seed = 99;
    opt.threads = 1;
    EXPECT_EQ(testkit::fingerprint(run_single_attacker_experiment(
                  TopologyKind::kWireline, opt)),
              kFig8Golden);
  }
  {
    DetectionOptionsExperiment opt;
    opt.topologies = 1;
    opt.successful_attacks_per_cell = 3;
    opt.max_trials_per_cell = 96;
    opt.seed = 77;
    opt.threads = 1;
    EXPECT_EQ(testkit::fingerprint(
                  run_detection_experiment(TopologyKind::kWireline, opt)),
              kFig9Golden);
  }
}

TEST(GoldenFigures, FaultSweepFingerprint) {
  FaultSweepOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 12;
  opt.seed = 11;
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    const std::uint32_t fp =
        testkit::fingerprint(run_fault_sweep(TopologyKind::kWireline, opt));
    EXPECT_EQ(fp, kFaultSweepGolden) << "at " << threads << " threads";
  }
}

}  // namespace
}  // namespace scapegoat
