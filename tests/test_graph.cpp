// Tests for the Graph type and Path validity.

#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace scapegoat {
namespace {

TEST(Graph, AddNodesAndLinks) {
  Graph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  auto l = g.add_link(0, 1);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(*l, 0u);
  EXPECT_EQ(g.num_links(), 1u);
  EXPECT_TRUE(g.has_link(0, 1));
  EXPECT_TRUE(g.has_link(1, 0));
  EXPECT_FALSE(g.has_link(0, 2));
  EXPECT_EQ(g.add_node(), 3u);
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(Graph, RejectsSelfLoopsAndDuplicates) {
  Graph g(2);
  EXPECT_FALSE(g.add_link(0, 0).has_value());
  ASSERT_TRUE(g.add_link(0, 1).has_value());
  EXPECT_FALSE(g.add_link(0, 1).has_value());
  EXPECT_FALSE(g.add_link(1, 0).has_value());
  EXPECT_EQ(g.num_links(), 1u);
}

TEST(Graph, AdjacencyAndDegree) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(0).size(), 3u);
  EXPECT_EQ(g.neighbors(1)[0].neighbor, 0u);
}

TEST(Graph, FindLinkScansSmallerList) {
  Graph g(5);
  LinkId hub01 = *g.add_link(0, 1);
  g.add_link(0, 2);
  g.add_link(0, 3);
  g.add_link(0, 4);
  EXPECT_EQ(g.find_link(0, 1), hub01);
  EXPECT_EQ(g.find_link(1, 0), hub01);
  EXPECT_FALSE(g.find_link(1, 2).has_value());
}

TEST(Graph, IncidentLinksSingleNode) {
  Graph g(4);
  LinkId a = *g.add_link(0, 1);
  LinkId b = *g.add_link(1, 2);
  g.add_link(2, 3);
  auto inc = g.incident_links(NodeId{1});
  ASSERT_EQ(inc.size(), 2u);
  EXPECT_EQ(inc[0], a);
  EXPECT_EQ(inc[1], b);
}

TEST(Graph, IncidentLinksNodeSetDeduplicates) {
  Graph g(3);
  LinkId ab = *g.add_link(0, 1);
  LinkId bc = *g.add_link(1, 2);
  LinkId ca = *g.add_link(2, 0);
  auto inc = g.incident_links(std::vector<NodeId>{0, 1});
  // The shared link 0-1 must appear once.
  ASSERT_EQ(inc.size(), 3u);
  EXPECT_EQ(inc[0], ab);
  EXPECT_EQ(inc[1], bc);
  EXPECT_EQ(inc[2], ca);
}

TEST(Link, OtherEndpoint) {
  Link l{3, 7};
  EXPECT_EQ(l.other(3), 7u);
  EXPECT_EQ(l.other(7), 3u);
  EXPECT_TRUE(l.has_endpoint(3));
  EXPECT_FALSE(l.has_endpoint(5));
}

TEST(Path, ContainsQueries) {
  Path p;
  p.nodes = {0, 1, 2};
  p.links = {10, 11};
  EXPECT_TRUE(p.contains_node(1));
  EXPECT_FALSE(p.contains_node(3));
  EXPECT_TRUE(p.contains_link(11));
  EXPECT_FALSE(p.contains_link(12));
  EXPECT_TRUE(p.contains_any_node({5, 2}));
  EXPECT_FALSE(p.contains_any_node({5, 6}));
  EXPECT_EQ(p.source(), 0u);
  EXPECT_EQ(p.destination(), 2u);
  EXPECT_EQ(p.length(), 2u);
}

TEST(Path, ValidityChecks) {
  Graph g(4);
  LinkId l01 = *g.add_link(0, 1);
  LinkId l12 = *g.add_link(1, 2);
  *g.add_link(2, 3);

  Path good;
  good.nodes = {0, 1, 2};
  good.links = {l01, l12};
  EXPECT_TRUE(is_valid_simple_path(g, good));

  Path wrong_link;
  wrong_link.nodes = {0, 1, 2};
  wrong_link.links = {l12, l01};  // swapped
  EXPECT_FALSE(is_valid_simple_path(g, wrong_link));

  Path repeated_node;
  repeated_node.nodes = {0, 1, 0};
  repeated_node.links = {l01, l01};
  EXPECT_FALSE(is_valid_simple_path(g, repeated_node));

  Path shape_mismatch;
  shape_mismatch.nodes = {0, 1};
  shape_mismatch.links = {l01, l12};
  EXPECT_FALSE(is_valid_simple_path(g, shape_mismatch));

  Path empty;
  EXPECT_FALSE(is_valid_simple_path(g, empty));
}

}  // namespace
}  // namespace scapegoat
