// Cross-module integration tests: full pipeline (topology → placement →
// tomography → attack → detection) on non-toy graphs.

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "attack/max_damage.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "topology/generators.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"

namespace scapegoat {
namespace {

TEST(Integration, IspPipelineEndToEnd) {
  Rng rng(201);
  auto sc = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  ASSERT_TRUE(sc.has_value());
  ASSERT_TRUE(sc->estimator().ok());

  // Honest tomography is exact.
  EXPECT_TRUE(approx_equal(sc->estimator().estimate(sc->clean_measurements()),
                           sc->x_true(), 1e-6));

  // A hub attacker can scapegoat someone.
  NodeId hub = 0;
  for (NodeId v = 0; v < sc->graph().num_nodes(); ++v)
    if (sc->graph().degree(v) > sc->graph().degree(hub)) hub = v;
  AttackContext ctx = sc->context({hub});
  MaxDamageOptions opt;
  opt.max_candidates = 16;
  const MaxDamageResult md = max_damage_attack(ctx, opt);
  ASSERT_TRUE(md.best.success);
  EXPECT_TRUE(satisfies_constraint1(ctx, md.best.m));
  for (LinkId v : md.best.victims)
    EXPECT_EQ(md.best.states[v], LinkState::kAbnormal);
  for (LinkId l : ctx.controlled_links())
    EXPECT_EQ(md.best.states[l], LinkState::kNormal);
}

TEST(Integration, WirelessPerfectCutStealthImperfectDetection) {
  Rng rng(202);
  GeometricParams gp;
  gp.num_nodes = 60;
  auto sc = Scenario::from_graph(random_geometric(gp, rng).graph, rng);
  ASSERT_TRUE(sc.has_value());
  const auto& paths = sc->estimator().paths();

  // Perfect-cut side (only exercisable when some link has two non-monitor
  // endpoints — sparse placements may monitor everything).
  bool tested_perfect = false;
  for (LinkId victim = 0; victim < sc->graph().num_links() && !tested_perfect;
       ++victim) {
    const Link& l = sc->graph().link(victim);
    if (sc->is_monitor(l.u) || sc->is_monitor(l.v)) continue;
    std::vector<NodeId> attackers;
    for (const Adjacent& a : sc->graph().neighbors(l.u))
      if (a.neighbor != l.v) attackers.push_back(a.neighbor);
    for (const Adjacent& a : sc->graph().neighbors(l.v))
      if (a.neighbor != l.u &&
          std::find(attackers.begin(), attackers.end(), a.neighbor) ==
              attackers.end())
        attackers.push_back(a.neighbor);
    if (attackers.empty()) continue;
    if (!is_perfect_cut(paths, attackers, {victim})) continue;
    AttackContext ctx = sc->context(attackers);
    const AttackResult r =
        chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    if (!r.success) continue;
    EXPECT_FALSE(detect_scapegoating(sc->estimator(), r.y_observed).detected);
    tested_perfect = true;
  }

  // Imperfect-cut side: random small attacker groups against random links.
  bool tested_imperfect = false;
  for (int attempt = 0; attempt < 100 && !tested_imperfect; ++attempt) {
    sc->resample_metrics(rng);
    const auto att =
        rng.sample_without_replacement(sc->graph().num_nodes(), 3);
    AttackContext ctx =
        sc->context(std::vector<NodeId>(att.begin(), att.end()));
    const auto lm = ctx.controlled_links();
    const LinkId victim = rng.index(sc->graph().num_links());
    if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
    if (is_perfect_cut(paths, ctx.attackers, {victim})) continue;
    const AttackResult r = chosen_victim_attack(ctx, {victim});
    if (!r.success) continue;
    // Theorem 3 (imperfect cut ⇒ inconsistency). The damage-max LP leaves a
    // large residual in practice.
    EXPECT_GT(
        detect_scapegoating(sc->estimator(), r.y_observed).residual_norm1,
        1.0);
    tested_imperfect = true;
  }
  EXPECT_TRUE(tested_imperfect);
}

TEST(Integration, MakeScenarioBothKinds) {
  Rng rng(203);
  auto wireline = make_scenario(TopologyKind::kWireline, rng);
  ASSERT_TRUE(wireline.has_value());
  EXPECT_TRUE(wireline->estimator().ok());
  EXPECT_GT(wireline->estimator().num_paths(),
            wireline->estimator().num_links());

  auto wireless = make_scenario(TopologyKind::kWireless, rng);
  ASSERT_TRUE(wireless.has_value());
  EXPECT_TRUE(wireless->estimator().ok());
  EXPECT_EQ(wireless->graph().num_nodes(), 100u);
}

TEST(Integration, ErdosRenyiScenarioAttackRoundTrip) {
  Rng rng(204);
  auto sc = Scenario::from_graph(erdos_renyi(30, 0.2, rng), rng);
  ASSERT_TRUE(sc.has_value());
  // Random 2-node attacker set; any feasible chosen-victim attack must pass
  // the independent verifier.
  for (int trial = 0; trial < 20; ++trial) {
    sc->resample_metrics(rng);
    const auto att = rng.sample_without_replacement(30, 2);
    AttackContext ctx =
        sc->context(std::vector<NodeId>(att.begin(), att.end()));
    const auto lm = ctx.controlled_links();
    const LinkId victim = rng.index(sc->graph().num_links());
    if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;
    const AttackResult r = chosen_victim_attack(ctx, {victim});
    if (r.success) EXPECT_TRUE(verify_chosen_victim_result(ctx, r));
  }
}

}  // namespace
}  // namespace scapegoat
