// Tests for Yen's k-shortest loopless paths.

#include "graph/k_shortest.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/paths.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

TEST(KShortest, FirstPathIsTheGeodesic) {
  Graph g = ring(6);
  auto paths = k_shortest_paths(g, 0, 2, 1);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 2u);
}

TEST(KShortest, RingHasExactlyTwoPaths) {
  Graph g = ring(6);
  auto paths = k_shortest_paths(g, 0, 3, 10);
  ASSERT_EQ(paths.size(), 2u);  // clockwise and counterclockwise only
  EXPECT_EQ(paths[0].length(), 3u);
  EXPECT_EQ(paths[1].length(), 3u);
  EXPECT_NE(paths[0].nodes, paths[1].nodes);
}

TEST(KShortest, AscendingCostsAndValidity) {
  Rng rng(111);
  Graph g = erdos_renyi(15, 0.3, rng);
  std::vector<double> w(g.num_links());
  for (auto& wi : w) wi = rng.uniform(0.5, 3.0);
  auto paths = k_shortest_paths(g, 0, 14, 8, w);
  ASSERT_FALSE(paths.empty());
  double prev = 0.0;
  std::set<std::vector<NodeId>> uniq;
  for (const Path& p : paths) {
    EXPECT_TRUE(is_valid_simple_path(g, p));
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.destination(), 14u);
    double cost = 0.0;
    for (LinkId l : p.links) cost += w[l];
    EXPECT_GE(cost + 1e-12, prev);
    prev = cost;
    EXPECT_TRUE(uniq.insert(p.nodes).second);  // all distinct
  }
}

TEST(KShortest, MatchesExhaustiveEnumerationOnK4) {
  Graph g = complete(4);
  // All 5 simple paths 0→3, by hop count: 1 + 2 + 2 of lengths 1,2,2,3,3.
  auto paths = k_shortest_paths(g, 0, 3, 10);
  ASSERT_EQ(paths.size(), 5u);
  EXPECT_EQ(paths[0].length(), 1u);
  EXPECT_EQ(paths[1].length(), 2u);
  EXPECT_EQ(paths[2].length(), 2u);
  EXPECT_EQ(paths[3].length(), 3u);
  EXPECT_EQ(paths[4].length(), 3u);
}

TEST(KShortest, WeightsChangeTheOrder) {
  // Triangle where the direct link is expensive.
  Graph g(3);
  LinkId direct = *g.add_link(0, 2);
  LinkId a = *g.add_link(0, 1);
  LinkId b = *g.add_link(1, 2);
  std::vector<double> w(3, 1.0);
  w[direct] = 5.0;
  auto paths = k_shortest_paths(g, 0, 2, 2, w);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].length(), 2u);  // via node 1: cost 2
  EXPECT_EQ(paths[1].length(), 1u);  // direct: cost 5
  EXPECT_EQ(paths[0].links, (std::vector<LinkId>{a, b}));
}

TEST(KShortest, DisconnectedOrDegenerateInputs) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_TRUE(k_shortest_paths(g, 0, 3, 3).empty());
  EXPECT_TRUE(k_shortest_paths(g, 0, 0, 3).empty());
  Graph conn = ring(4);
  EXPECT_TRUE(k_shortest_paths(conn, 0, 2, 0).empty());
}

TEST(KShortest, AgreesWithDfsEnumerationOnRandomGraphs) {
  Rng rng(112);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = erdos_renyi(9, 0.35, rng);
    auto all = enumerate_simple_paths(g, 0, 8,
                                      PathEnumerationOptions{9, 100000});
    auto yen = k_shortest_paths(g, 0, 8, all.size() + 5);
    EXPECT_EQ(yen.size(), all.size());
  }
}

}  // namespace
}  // namespace scapegoat
