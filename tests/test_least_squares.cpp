// Tests for the least-squares entry point and the incremental RankTracker.

#include "linalg/least_squares.hpp"

#include <gtest/gtest.h>

#include "linalg/qr.hpp"
#include "util/random.hpp"

namespace scapegoat {
namespace {

TEST(LeastSquares, QrAndNormalEquationsAgree) {
  Rng rng(21);
  Matrix a(15, 6);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.uniform(-2, 2);
  Vector b(15);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-5, 5);

  auto x_qr = least_squares(a, b, LeastSquaresMethod::kQr);
  auto x_ne = least_squares(a, b, LeastSquaresMethod::kNormalEquations);
  ASSERT_TRUE(x_qr.has_value());
  ASSERT_TRUE(x_ne.has_value());
  EXPECT_TRUE(approx_equal(*x_qr, *x_ne, 1e-7));
}

TEST(LeastSquares, RejectsUnderdeterminedSystem) {
  Matrix a(2, 5, 1.0);
  Vector b{1.0, 2.0};
  EXPECT_FALSE(least_squares(a, b).has_value());
}

TEST(LeastSquares, RejectsRankDeficientColumns) {
  Matrix a(4, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    a(r, 0) = static_cast<double>(r + 1);
    a(r, 1) = 2.0 * static_cast<double>(r + 1);
  }
  EXPECT_FALSE(least_squares(a, Vector(4, 1.0)).has_value());
  EXPECT_FALSE(
      least_squares(a, Vector(4, 1.0), LeastSquaresMethod::kNormalEquations)
          .has_value());
}

TEST(LeastSquares, ResidualOrthogonalToColumns) {
  Matrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}, {1.0, 4.0}};
  Vector b{6.0, 5.0, 7.0, 10.0};
  auto x = least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  Vector r = residual(a, *x, b);
  EXPECT_NEAR((a.transposed() * r).norm_inf(), 0.0, 1e-10);
}

TEST(RankTracker, AcceptsOnlyIndependentRows) {
  RankTracker t(3);
  EXPECT_TRUE(t.add(Vector{1.0, 0.0, 0.0}));
  EXPECT_TRUE(t.add(Vector{1.0, 1.0, 0.0}));
  EXPECT_FALSE(t.add(Vector{2.0, 1.0, 0.0}));  // in the span
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_FALSE(t.full());
  EXPECT_TRUE(t.add(Vector{0.0, 0.0, 5.0}));
  EXPECT_TRUE(t.full());
  // Once full, nothing is independent.
  EXPECT_FALSE(t.add(Vector{1.0, 2.0, 3.0}));
}

TEST(RankTracker, RejectsZeroRow) {
  RankTracker t(4);
  EXPECT_FALSE(t.add(Vector(4, 0.0)));
  EXPECT_EQ(t.rank(), 0u);
}

TEST(RankTracker, IsIndependentDoesNotMutate) {
  RankTracker t(2);
  EXPECT_TRUE(t.is_independent(Vector{1.0, 0.0}));
  EXPECT_EQ(t.rank(), 0u);
  t.add(Vector{1.0, 0.0});
  EXPECT_FALSE(t.is_independent(Vector{2.0, 0.0}));
  EXPECT_TRUE(t.is_independent(Vector{0.0, 1.0}));
}

TEST(RankTracker, NumericallyNearDependentRowRejected) {
  RankTracker t(2, 1e-6);
  t.add(Vector{1.0, 0.0});
  // Angle ~1e-9 off the span: should be treated as dependent.
  EXPECT_FALSE(t.add(Vector{1.0, 1e-9}));
  // A clearly independent direction is accepted.
  EXPECT_TRUE(t.add(Vector{1.0, 0.5}));
}

TEST(RankTracker, MatchesQrRankOnRandomRows) {
  Rng rng(33);
  const std::size_t dim = 8;
  Matrix rows(20, dim);
  RankTracker t(dim);
  for (std::size_t r = 0; r < rows.rows(); ++r) {
    Vector row(dim);
    // Low-entropy rows: entries in {0, 1} give frequent dependencies.
    for (std::size_t c = 0; c < dim; ++c) row[c] = rng.bernoulli(0.4) ? 1 : 0;
    rows.set_row(r, row);
    t.add(row);
  }
  EXPECT_EQ(t.rank(), matrix_rank(rows));
}

}  // namespace
}  // namespace scapegoat
