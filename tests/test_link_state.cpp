// Tests for link-state classification (Definition 1).

#include "tomography/link_state.hpp"

#include <gtest/gtest.h>

namespace scapegoat {
namespace {

TEST(LinkState, ThreeStateClassification) {
  const StateThresholds t{100.0, 800.0};
  EXPECT_EQ(classify(0.0, t), LinkState::kNormal);
  EXPECT_EQ(classify(99.999, t), LinkState::kNormal);
  EXPECT_EQ(classify(100.0, t), LinkState::kUncertain);  // boundary inclusive
  EXPECT_EQ(classify(400.0, t), LinkState::kUncertain);
  EXPECT_EQ(classify(800.0, t), LinkState::kUncertain);  // boundary inclusive
  EXPECT_EQ(classify(800.001, t), LinkState::kAbnormal);
}

TEST(LinkState, TwoStateCollapseWithSingleThreshold) {
  // Definition 1, Remark: b_l == b_u gives the two-state scenario where
  // only the exact boundary value is "uncertain".
  const StateThresholds t{500.0, 500.0};
  EXPECT_EQ(classify(499.0, t), LinkState::kNormal);
  EXPECT_EQ(classify(500.0, t), LinkState::kUncertain);
  EXPECT_EQ(classify(501.0, t), LinkState::kAbnormal);
}

TEST(LinkState, ClassifyAllAndSelect) {
  const StateThresholds t{100.0, 800.0};
  const Vector x{10.0, 500.0, 900.0, 50.0, 850.0};
  const auto states = classify_all(x, t);
  ASSERT_EQ(states.size(), 5u);
  EXPECT_EQ(links_in_state(states, LinkState::kNormal),
            (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(links_in_state(states, LinkState::kUncertain),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(links_in_state(states, LinkState::kAbnormal),
            (std::vector<std::size_t>{2, 4}));
}

TEST(LinkState, ToStringNames) {
  EXPECT_EQ(to_string(LinkState::kNormal), "normal");
  EXPECT_EQ(to_string(LinkState::kUncertain), "uncertain");
  EXPECT_EQ(to_string(LinkState::kAbnormal), "abnormal");
}

TEST(LinkState, DefaultThresholdsMatchPaper) {
  const StateThresholds t;
  EXPECT_DOUBLE_EQ(t.lower, 100.0);
  EXPECT_DOUBLE_EQ(t.upper, 800.0);
  EXPECT_TRUE(t.valid());
}

}  // namespace
}  // namespace scapegoat
