// Tests for the manipulation-localization defense extension.

#include "detect/localize.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class LocalizeTest : public ::testing::Test {
 protected:
  LocalizeTest()
      : rng_(81), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(LocalizeTest, CleanMeasurementsAreNotManipulated) {
  const LocalizationResult r = localize_manipulation(
      scenario_.estimator(), scenario_.clean_measurements());
  EXPECT_FALSE(r.manipulated);
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.suspicious_paths.empty());
  EXPECT_TRUE(approx_equal(r.x_cleaned, scenario_.x_true(), 1e-7));
}

TEST_F(LocalizeTest, SinglePathTamperingIsolatedExactly) {
  Vector y = scenario_.clean_measurements();
  y[16] += 900.0;  // tamper path 17 only
  const LocalizationResult r =
      localize_manipulation(scenario_.estimator(), y);
  EXPECT_TRUE(r.manipulated);
  ASSERT_TRUE(r.clean);
  EXPECT_EQ(r.suspicious_paths, (std::vector<std::size_t>{16}));
  // With path 17 removed, the rest re-estimates the truth.
  EXPECT_TRUE(approx_equal(r.x_cleaned, scenario_.x_true(), 1e-6));
}

TEST_F(LocalizeTest, TwoTamperedPathsFound) {
  Vector y = scenario_.clean_measurements();
  y[16] += 700.0;
  y[5] += 500.0;
  const LocalizationResult r =
      localize_manipulation(scenario_.estimator(), y);
  ASSERT_TRUE(r.clean);
  EXPECT_TRUE(std::find(r.suspicious_paths.begin(), r.suspicious_paths.end(),
                        16u) != r.suspicious_paths.end());
  EXPECT_TRUE(std::find(r.suspicious_paths.begin(), r.suspicious_paths.end(),
                        5u) != r.suspicious_paths.end());
  EXPECT_TRUE(approx_equal(r.x_cleaned, scenario_.x_true(), 1e-6));
}

TEST_F(LocalizeTest, SuspectNodesContainIntersection) {
  Vector y = scenario_.clean_measurements();
  y[16] += 900.0;  // path 17: M3 → D → M2
  const LocalizationResult r =
      localize_manipulation(scenario_.estimator(), y);
  ASSERT_TRUE(r.clean);
  // All of path 17's nodes are "suspect" under a single-path flag.
  EXPECT_EQ(r.suspect_nodes.size(), 3u);
  EXPECT_TRUE(std::find(r.suspect_nodes.begin(), r.suspect_nodes.end(),
                        net_.d) != r.suspect_nodes.end());
}

TEST_F(LocalizeTest, StopsWhenIdentifiabilityWouldBreak) {
  // Tamper nearly everything: localization cannot clean without losing
  // rank; it must report clean == false, not crash or loop.
  Vector y = scenario_.clean_measurements();
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += 300.0 + 30.0 * i;
  LocalizationOptions opt;
  opt.max_removals = 23;
  const LocalizationResult r =
      localize_manipulation(scenario_.estimator(), y, opt);
  EXPECT_TRUE(r.manipulated);
  EXPECT_LE(r.suspicious_paths.size(), 23u - 0u);
}

TEST_F(LocalizeTest, BudgetIsRespected) {
  Vector y = scenario_.clean_measurements();
  y[0] += 500.0;
  y[5] += 500.0;
  y[16] += 500.0;
  LocalizationOptions opt;
  opt.max_removals = 1;
  const LocalizationResult r =
      localize_manipulation(scenario_.estimator(), y, opt);
  EXPECT_LE(r.suspicious_paths.size(), 1u);
}

TEST_F(LocalizeTest, MinoritySupportManipulationIsolatedToAttackerPaths) {
  // A manipulation confined to a minority of rows is pinned onto exactly
  // those rows, and the surviving rows recover the truth.
  Vector m(scenario_.estimator().num_paths(), 0.0);
  m[0] = 600.0;   // paths 1, 2, 4 all traverse attacker B
  m[1] = 450.0;
  m[3] = 800.0;
  AttackContext ctx = scenario_.context(net_.attackers);
  ASSERT_TRUE(satisfies_constraint1(ctx, m));
  const Vector y = scenario_.clean_measurements() + m;

  const LocalizationResult r =
      localize_manipulation(scenario_.estimator(), y);
  EXPECT_TRUE(r.manipulated);
  ASSERT_TRUE(r.clean);
  for (std::size_t idx : {0u, 1u, 3u}) {
    EXPECT_TRUE(std::find(r.suspicious_paths.begin(),
                          r.suspicious_paths.end(),
                          idx) != r.suspicious_paths.end())
        << "path " << idx;
  }
  EXPECT_TRUE(approx_equal(r.x_cleaned, scenario_.x_true(), 1e-6));
}

TEST_F(LocalizeTest, MajorityManipulationShiftsBlameToHonestPaths) {
  // Documented limitation: the Fig. 1 attackers sit on 22 of 23 paths, so
  // least squares treats the single honest row (path 17) as the outlier —
  // the cheapest consistent explanation removes IT, not the attack. An
  // operator can still see the manipulated verdict; trusting the "cleaned"
  // estimate requires the attacker's coverage to be a minority of rows.
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult attack = chosen_victim_attack(ctx, {9});
  ASSERT_TRUE(attack.success);
  const LocalizationResult r = localize_manipulation(
      scenario_.estimator(), attack.y_observed);
  EXPECT_TRUE(r.manipulated);
  ASSERT_FALSE(r.suspicious_paths.empty());
  // The honest path is among the blamed ones.
  EXPECT_TRUE(std::find(r.suspicious_paths.begin(), r.suspicious_paths.end(),
                        16u) != r.suspicious_paths.end());
}

}  // namespace
}  // namespace scapegoat
