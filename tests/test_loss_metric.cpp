// Tests for loss-rate tomography support (log-additive metrics).

#include "tomography/loss_metric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "simnet/multicast_probe.hpp"
#include "tomography/estimator.hpp"
#include "tomography/multicast_mle.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

TEST(LossMetric, ConversionRoundTrip) {
  for (double p : {1.0, 0.99, 0.9, 0.5, 0.1}) {
    const double x = loss_metric_from_delivery(p);
    EXPECT_GE(x, 0.0);
    EXPECT_NEAR(delivery_from_loss_metric(x), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(loss_metric_from_delivery(1.0), 0.0);
}

TEST(LossMetric, ZeroDeliveryStaysFinite) {
  const double x = loss_metric_from_delivery(0.0);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_GT(x, 10.0);
}

TEST(LossMetric, VectorConversions) {
  const std::vector<double> probs{1.0, 0.9, 0.5};
  const Vector metrics = loss_metrics_from_delivery(probs);
  EXPECT_DOUBLE_EQ(metrics[0], 0.0);
  EXPECT_NEAR(metrics[1], -std::log(0.9), 1e-12);
  const auto back = delivery_from_loss_metrics(metrics);
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_NEAR(back[i], probs[i], 1e-12);
}

TEST(LossMetric, ThresholdsAreOrderedAndInverted) {
  const StateThresholds t = loss_thresholds(0.99, 0.90);
  EXPECT_TRUE(t.valid());
  EXPECT_LT(t.lower, t.upper);
  // A 99.5%-delivery link is normal; an 85%-delivery link abnormal.
  EXPECT_EQ(classify(loss_metric_from_delivery(0.995), t),
            LinkState::kNormal);
  EXPECT_EQ(classify(loss_metric_from_delivery(0.85), t),
            LinkState::kAbnormal);
  EXPECT_EQ(classify(loss_metric_from_delivery(0.95), t),
            LinkState::kUncertain);
}

TEST(LossMetric, TomographyRecoversLossRates) {
  // The whole linear pipeline works in the loss domain: path metrics are
  // sums of per-link −log p, and the estimator returns them exactly.
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  ASSERT_TRUE(est.ok());
  std::vector<double> delivery(net.graph.num_links(), 0.995);
  delivery[3] = 0.80;  // one lossy link
  const Vector x = loss_metrics_from_delivery(delivery);
  const Vector y = path_metrics(net.paths, x);
  const Vector x_hat = est.estimate(y);
  EXPECT_TRUE(approx_equal(x_hat, x, 1e-8));
  const auto states = classify_all(x_hat, loss_thresholds());
  EXPECT_EQ(states[3], LinkState::kAbnormal);
  EXPECT_EQ(states[0], LinkState::kNormal);
}

TEST(LossMetric, LeafMetricsAccountForGreyHoleGroundTruth) {
  // Per-leaf pass-rate accounting against the simulator's own counters: the
  // metric vector must be exactly −log(reached/probes), and a grey hole at
  // the branch point must show up in the victim leaf's metric only.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(1, 3);
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  simnet::MulticastAdversary adv;
  adv.rules = {{1, 2}};  // drop into leaf node 2's subtree
  adv.drop_rate = 0.25;
  simnet::MulticastProbeOptions opt;
  opt.probes = 8000;
  opt.seed = 0x10c5ULL;
  opt.adversary = &adv;
  const simnet::MulticastProbeRun run = simnet::run_multicast_probes(*tree, opt);
  const Vector y = run.leaf_loss_metrics();
  ASSERT_EQ(y.size(), 2u);
  const double n = static_cast<double>(run.probes_sent);
  for (std::size_t i = 0; i < 2; ++i) {
    const double pass = static_cast<double>(run.leaf_reached[i]) / n;
    EXPECT_NEAR(y[i], -std::log(pass), 1e-12) << "leaf " << i;
  }
  // The victim leaf carries ≈ −log(0.75); the sibling is untouched.
  EXPECT_NEAR(y[0], -std::log(0.75), 0.03);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  // Converting back recovers the empirical delivery rates.
  EXPECT_NEAR(delivery_from_loss_metric(y[0]),
              static_cast<double>(run.leaf_reached[0]) / n, 1e-12);
}

TEST(LossMetric, DeadLeafIsATypedRefusalNotNaN) {
  // A leaf that never receives a probe has no finite loss metric: the MLE
  // must refuse with kMissingData instead of emitting NaN link rates, and
  // the floored metric path must stay finite.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(1, 3);
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  simnet::MulticastProbeOptions opt;
  opt.probes = 500;
  opt.link_delivery = {1.0, 0.0, 1.0};  // leaf node 2's link is dead
  const simnet::MulticastProbeRun run = simnet::run_multicast_probes(*tree, opt);
  EXPECT_EQ(run.leaf_reached[0], 0u);
  const auto fit = solve_multicast_mle(g.num_links(), *tree, run.obs);
  ASSERT_FALSE(fit.ok());
  EXPECT_EQ(fit.code(), robust::ErrorCode::kMissingData);
  // The floored metric vector is the degraded-but-total representation.
  const Vector y = run.leaf_loss_metrics();
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y[i])) << i;
    EXPECT_FALSE(std::isnan(y[i])) << i;
  }
  EXPECT_NEAR(y[0], -std::log(1e-9), 1e-9);  // the documented floor
}

}  // namespace
}  // namespace scapegoat
