// Tests for loss-rate tomography support (log-additive metrics).

#include "tomography/loss_metric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tomography/estimator.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

TEST(LossMetric, ConversionRoundTrip) {
  for (double p : {1.0, 0.99, 0.9, 0.5, 0.1}) {
    const double x = loss_metric_from_delivery(p);
    EXPECT_GE(x, 0.0);
    EXPECT_NEAR(delivery_from_loss_metric(x), p, 1e-12);
  }
  EXPECT_DOUBLE_EQ(loss_metric_from_delivery(1.0), 0.0);
}

TEST(LossMetric, ZeroDeliveryStaysFinite) {
  const double x = loss_metric_from_delivery(0.0);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_GT(x, 10.0);
}

TEST(LossMetric, VectorConversions) {
  const std::vector<double> probs{1.0, 0.9, 0.5};
  const Vector metrics = loss_metrics_from_delivery(probs);
  EXPECT_DOUBLE_EQ(metrics[0], 0.0);
  EXPECT_NEAR(metrics[1], -std::log(0.9), 1e-12);
  const auto back = delivery_from_loss_metrics(metrics);
  for (std::size_t i = 0; i < probs.size(); ++i)
    EXPECT_NEAR(back[i], probs[i], 1e-12);
}

TEST(LossMetric, ThresholdsAreOrderedAndInverted) {
  const StateThresholds t = loss_thresholds(0.99, 0.90);
  EXPECT_TRUE(t.valid());
  EXPECT_LT(t.lower, t.upper);
  // A 99.5%-delivery link is normal; an 85%-delivery link abnormal.
  EXPECT_EQ(classify(loss_metric_from_delivery(0.995), t),
            LinkState::kNormal);
  EXPECT_EQ(classify(loss_metric_from_delivery(0.85), t),
            LinkState::kAbnormal);
  EXPECT_EQ(classify(loss_metric_from_delivery(0.95), t),
            LinkState::kUncertain);
}

TEST(LossMetric, TomographyRecoversLossRates) {
  // The whole linear pipeline works in the loss domain: path metrics are
  // sums of per-link −log p, and the estimator returns them exactly.
  ExampleNetwork net = fig1_network();
  TomographyEstimator est(net.graph, net.paths);
  ASSERT_TRUE(est.ok());
  std::vector<double> delivery(net.graph.num_links(), 0.995);
  delivery[3] = 0.80;  // one lossy link
  const Vector x = loss_metrics_from_delivery(delivery);
  const Vector y = path_metrics(net.paths, x);
  const Vector x_hat = est.estimate(y);
  EXPECT_TRUE(approx_equal(x_hat, x, 1e-8));
  const auto states = classify_all(x_hat, loss_thresholds());
  EXPECT_EQ(states[3], LinkState::kAbnormal);
  EXPECT_EQ(states[0], LinkState::kNormal);
}

}  // namespace
}  // namespace scapegoat
