// Loss-domain scapegoating end to end: planner validation taxonomy, the
// feasible-and-stealthy subtree-framing cell (victim blamed, innocent relay
// chain included, residual silent), the detectable split-framing cell
// (clamped fit, residual fires), and the honest-replay contract of
// evaluate_loss_scapegoat.

#include "attack/loss_scapegoat.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "detect/detector.hpp"
#include "graph/graph.hpp"

namespace scapegoat {
namespace {

// root 0 —l0— 1 —l1— 2 (attacker, graph node 2 == tree node 1), branching
// into chains 2—3—4 (victim leaf, links l2 l3) and 2—5 (sibling leaf, l4).
// The victim logical link is a two-link relay chain, so "victim blamed"
// demonstrably frames an innocent relay as well.
struct TreeFixture {
  Graph g;
  MulticastTree tree;
  std::size_t attacker = 0;
  std::size_t victim_child = 0;

  TreeFixture() : g(6) {
    g.add_link(0, 1);
    g.add_link(1, 2);
    g.add_link(2, 3);
    g.add_link(3, 4);
    g.add_link(2, 5);
    auto built = build_multicast_tree(g, 0, {4, 5});
    EXPECT_TRUE(built.ok());
    tree = std::move(*built);
    for (std::size_t k = 0; k < tree.num_nodes(); ++k) {
      if (tree.nodes[k].graph_node == NodeId{2}) attacker = k;
      if (tree.nodes[k].graph_node == NodeId{4}) victim_child = k;
    }
  }
};

TEST(LossAttackFamilyIo, RoundTripsAndRejectsUnknown) {
  for (const LossAttackFamily family :
       {LossAttackFamily::kSubtreeFraming, LossAttackFamily::kSplitFraming}) {
    const auto back = loss_attack_family_from_string(to_string(family));
    ASSERT_TRUE(back.has_value()) << to_string(family);
    EXPECT_EQ(*back, family);
    std::ostringstream os;
    os << family;
    EXPECT_EQ(os.str(), to_string(family));
  }
  EXPECT_FALSE(loss_attack_family_from_string("ghost_framing").has_value());
}

TEST(LossScapegoatPlanner, ValidationTaxonomy) {
  const TreeFixture s;
  // Attacker must be internal: a leaf node is refused.
  EXPECT_EQ(plan_loss_scapegoat(s.g, s.tree, s.victim_child, s.victim_child,
                                LossAttackFamily::kSubtreeFraming)
                .code(),
            robust::ErrorCode::kInvalidInput);
  // Victim must be a child of the attacker: the root is not.
  EXPECT_EQ(plan_loss_scapegoat(s.g, s.tree, s.attacker, 0,
                                LossAttackFamily::kSubtreeFraming)
                .code(),
            robust::ErrorCode::kInvalidInput);
  // link_delivery, when given, must cover every physical link.
  LossScapegoatOptions short_delivery;
  short_delivery.link_delivery = {1.0, 1.0};
  EXPECT_EQ(plan_loss_scapegoat(s.g, s.tree, s.attacker, s.victim_child,
                                LossAttackFamily::kSubtreeFraming,
                                short_delivery)
                .code(),
            robust::ErrorCode::kInvalidInput);
  // An empty candidate rate list is a search over nothing.
  LossScapegoatOptions no_rates;
  no_rates.drop_rates.clear();
  EXPECT_EQ(plan_loss_scapegoat(s.g, s.tree, s.attacker, s.victim_child,
                                LossAttackFamily::kSubtreeFraming, no_rates)
                .code(),
            robust::ErrorCode::kEmptyInput);
}

TEST(LossScapegoatPlanner, RatesBelowTheAbnormalThresholdAreInfeasible) {
  const TreeFixture s;
  LossScapegoatOptions opt;
  // 2% drops keep the victim's delivery ≈ 0.98 > the 0.90 abnormal line.
  opt.drop_rates = {0.02};
  const auto plan =
      plan_loss_scapegoat(s.g, s.tree, s.attacker, s.victim_child,
                          LossAttackFamily::kSubtreeFraming, opt);
  ASSERT_TRUE(plan.ok()) << plan.error_message();
  EXPECT_FALSE(plan->feasible);
  EXPECT_TRUE(plan->adversary.rules.empty());
}

TEST(LossScapegoatPlanner, SubtreeFramingIsFeasibleAndStealthy) {
  const TreeFixture s;
  LossScapegoatOptions opt;
  opt.seed = 11;
  const auto plan =
      plan_loss_scapegoat(s.g, s.tree, s.attacker, s.victim_child,
                          LossAttackFamily::kSubtreeFraming, opt);
  ASSERT_TRUE(plan.ok()) << plan.error_message();
  ASSERT_TRUE(plan->feasible);
  // Smallest-footprint search. The victim logical link is a TWO-link chain:
  // its −log metric splits in half, so each physical link reads the square
  // root of the chain delivery and crosses the 0.90 abnormal line only once
  // the chain delivery drops under 0.81 — the first qualifying rate is 20%.
  EXPECT_GE(plan->drop_rate, 0.20 - 1e-12);
  EXPECT_LE(plan->drop_rate, 0.25);
  ASSERT_EQ(plan->adversary.rules.size(), 1u);
  EXPECT_EQ(plan->adversary.rules[0].at, s.attacker);
  EXPECT_EQ(plan->adversary.rules[0].victim, s.victim_child);
  EXPECT_FALSE(plan->adversary.exclusive);
  // The rehearsal already certifies stealth (a boundary clamp on a perfect
  // link is benign — the residual cap is what the planner enforces).
  EXPECT_LE(plan->planned_residual, opt.stealth_alpha);

  const auto outcome = evaluate_loss_scapegoat(s.g, s.tree, *plan, opt);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();
  EXPECT_TRUE(outcome->victim_blamed);
  EXPECT_TRUE(outcome->attacker_clean);
  EXPECT_FALSE(outcome->detected);
  EXPECT_LE(outcome->residual, opt.defender_alpha);
  // Both physical links of the victim chain are framed — the relay 2—3
  // carried every probe faithfully and still reads abnormal.
  const auto& victim_chain = s.tree.nodes[s.victim_child].chain;
  ASSERT_EQ(victim_chain.size(), 2u);
  for (const LinkId l : victim_chain)
    EXPECT_EQ(outcome->states[l], LinkState::kAbnormal) << "link " << l;
  // The attacker's own chain reads clean.
  for (const LinkId l : s.tree.nodes[s.attacker].chain)
    EXPECT_NE(outcome->states[l], LinkState::kAbnormal) << "link " << l;
}

TEST(LossScapegoatPlanner, SplitFramingBlamesButTripsTheResidual) {
  const TreeFixture s;
  LossScapegoatOptions opt;
  opt.seed = 23;
  const auto plan =
      plan_loss_scapegoat(s.g, s.tree, s.attacker, s.victim_child,
                          LossAttackFamily::kSplitFraming, opt);
  ASSERT_TRUE(plan.ok()) << plan.error_message();
  ASSERT_TRUE(plan->feasible);
  ASSERT_EQ(plan->adversary.rules.size(), 2u);
  EXPECT_TRUE(plan->adversary.exclusive);
  EXPECT_NE(plan->split_sibling, plan->victim_child);
  // The exclusive coin's anti-correlation is infeasible for the tree model:
  // the rehearsal fit already clamps.
  EXPECT_GE(plan->planned_clamped, 1u);

  const auto outcome = evaluate_loss_scapegoat(s.g, s.tree, *plan, opt);
  ASSERT_TRUE(outcome.ok()) << outcome.error_message();
  EXPECT_TRUE(outcome->victim_blamed);
  EXPECT_TRUE(outcome->detected);
  EXPECT_GT(outcome->residual, opt.defender_alpha);
}

TEST(LossScapegoatPlanner, HonestBackgroundLossDoesNotAlarmTheDefender) {
  // No attack at all: the defender fed an honest lossy run must neither
  // blame the victim chain nor raise the residual — the clean-trial
  // false-alarm contract the ablation grid reports on.
  const TreeFixture s;
  simnet::MulticastProbeOptions popt;
  popt.probes = 4000;
  popt.seed = 77;
  popt.link_delivery = {0.99, 0.985, 0.99, 0.995, 0.99};
  const auto run = simnet::run_multicast_probes(s.tree, popt);
  MulticastMleEstimator defender(s.g, s.tree);
  defender.ingest(run.obs);
  const Vector y = run.leaf_loss_metrics();
  const DetectionOutcome verdict =
      detect_scapegoating(defender, y, DetectorOptions{0.05});
  EXPECT_FALSE(verdict.detected);
  const auto states = classify_all(defender.estimate(y), loss_thresholds());
  for (std::size_t l = 0; l < states.size(); ++l)
    EXPECT_NE(states[l], LinkState::kAbnormal) << "link " << l;
}

TEST(LossScapegoatEvaluator, RefusesInfeasibleOrForeignPlans) {
  const TreeFixture s;
  LossScapegoatPlan infeasible;
  EXPECT_EQ(evaluate_loss_scapegoat(s.g, s.tree, infeasible).code(),
            robust::ErrorCode::kInvalidInput);
  // A plan indexed against a different tree shape.
  LossScapegoatPlan foreign;
  foreign.feasible = true;
  foreign.attacker = 99;
  foreign.victim_child = 100;
  foreign.adversary.rules = {{99, 100}};
  foreign.adversary.drop_rate = 0.2;
  EXPECT_EQ(evaluate_loss_scapegoat(s.g, s.tree, foreign).code(),
            robust::ErrorCode::kInvalidInput);
}

}  // namespace
}  // namespace scapegoat
