// Tests for the LP model and the two-phase simplex solver.

#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/random.hpp"

namespace scapegoat::lp {
namespace {

TEST(Simplex, SimpleMaximization) {
  // max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → (4,0), obj 12.
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0, kInfinity, 3.0, "x");
  auto y = m.add_variable(0, kInfinity, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kLessEqual, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, RowType::kLessEqual, 6.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 12.0, 1e-8);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
  EXPECT_NEAR(s.x[1], 0.0, 1e-8);
}

TEST(Simplex, SimpleMinimizationWithGe) {
  // min 2x + 3y s.t. x + y ≥ 10, x ≤ 6 → x=6, y=4, obj 24.
  Model m(Sense::kMinimize);
  auto x = m.add_variable(0, 6.0, 2.0);
  auto y = m.add_variable(0, kInfinity, 3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kGreaterEqual, 10.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 24.0, 1e-8);
  EXPECT_NEAR(s.x[0], 6.0, 1e-8);
  EXPECT_NEAR(s.x[1], 4.0, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x ≤ 2 → obj 5.
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0, 2.0, 1.0);
  auto y = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 5.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  // x ≤ 1 and x ≥ 2 simultaneously.
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}}, RowType::kLessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, RowType::kGreaterEqual, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualities) {
  Model m(Sense::kMinimize);
  auto x = m.add_variable(0, kInfinity, 1.0);
  auto y = m.add_variable(0, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 2.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0, kInfinity, 1.0);
  auto y = m.add_variable(0, kInfinity, 0.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, RowType::kLessEqual, 1.0);
  EXPECT_EQ(solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, RespectsVariableUpperBounds) {
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0, 7.5, 1.0);
  (void)x;
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 7.5, 1e-9);
}

TEST(Simplex, HandlesShiftedLowerBounds) {
  // min x with x ≥ -3 and x + y = 0, y ≤ 2 → x = -2? No: y ≤ 2 ⇒ x ≥ -2.
  Model m(Sense::kMinimize);
  auto x = m.add_variable(-3.0, kInfinity, 1.0);
  auto y = m.add_variable(0.0, 2.0, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 0.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -2.0, 1e-8);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(Simplex, HandlesFreeVariables) {
  // min |style| free var: min x s.t. x ≥ -5 via constraint (variable itself
  // is free both ways).
  Model m(Sense::kMinimize);
  auto x = m.add_variable(-kInfinity, kInfinity, 1.0);
  m.add_constraint({{x, 1.0}}, RowType::kGreaterEqual, -5.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -5.0, 1e-8);
}

TEST(Simplex, NegativeUpperBoundVariable) {
  // Variable confined to [-4, -1], maximize it → -1.
  Model m(Sense::kMaximize);
  m.add_variable(-4.0, -1.0, 1.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -1.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degenerate LP; must not cycle.
  Model m(Sense::kMaximize);
  auto x1 = m.add_variable(0, kInfinity, 10.0);
  auto x2 = m.add_variable(0, kInfinity, -57.0);
  auto x3 = m.add_variable(0, kInfinity, -9.0);
  auto x4 = m.add_variable(0, kInfinity, -24.0);
  m.add_constraint({{x1, 0.5}, {x2, -5.5}, {x3, -2.5}, {x4, 9.0}},
                   RowType::kLessEqual, 0.0);
  m.add_constraint({{x1, 0.5}, {x2, -1.5}, {x3, -0.5}, {x4, 1.0}},
                   RowType::kLessEqual, 0.0);
  m.add_constraint({{x1, 1.0}}, RowType::kLessEqual, 1.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-7);
}

TEST(Simplex, SolutionIsFeasibleForModel) {
  Model m(Sense::kMaximize);
  auto a = m.add_variable(0, 10, 1.0);
  auto b = m.add_variable(2, 8, 2.0);
  auto c = m.add_variable(-3, 3, -1.0);
  m.add_constraint({{a, 1.0}, {b, 2.0}, {c, 1.0}}, RowType::kLessEqual, 15.0);
  m.add_constraint({{a, 1.0}, {b, -1.0}}, RowType::kGreaterEqual, -4.0);
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-7);
  EXPECT_NEAR(m.objective_value(s.x), s.objective, 1e-9);
}

// Property sweep: random small LPs with box bounds and ≤ rows are always
// feasible (origin-ish point inside); simplex must return optimal and the
// solution must satisfy the model within tolerance. Compare against a coarse
// grid-search lower bound to catch gross suboptimality.
class RandomLpSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpSweep, OptimalAndFeasible) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + rng.index(3);   // 2-4 vars
  const std::size_t rows = 1 + rng.index(4);
  Model m(Sense::kMaximize);
  for (std::size_t j = 0; j < n; ++j)
    m.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(-1.0, 2.0));
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < n; ++j)
      terms.push_back({j, rng.uniform(0.0, 1.0)});
    m.add_constraint(std::move(terms), RowType::kLessEqual,
                     rng.uniform(1.0, 6.0));
  }
  Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);

  // Coarse grid search cannot beat the simplex optimum.
  const int steps = 6;
  std::vector<double> x(n, 0.0);
  double best = -1e100;
  std::vector<int> idx(n, 0);
  while (true) {
    for (std::size_t j = 0; j < n; ++j)
      x[j] = m.variable(j).upper * idx[j] / steps;
    if (m.max_violation(x) <= 1e-9)
      best = std::max(best, m.objective_value(x));
    std::size_t j = 0;
    while (j < n && ++idx[j] > steps) idx[j++] = 0;
    if (j == n) break;
  }
  EXPECT_GE(s.objective, best - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSweep, ::testing::Range(0, 25));

TEST(Simplex, IterationLimitReturnsBasisCertificate) {
  // A healthy LP starved of pivots: the solver must stop at the cap and
  // hand back the basis + basic point it reached, never an empty result.
  Rng rng(13);
  const std::size_t n = 12;
  Model m(Sense::kMaximize);
  for (std::size_t j = 0; j < n; ++j)
    m.add_variable(0.0, rng.uniform(1.0, 4.0), rng.uniform(0.5, 2.0));
  for (std::size_t c = 0; c < 10; ++c) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < n; ++j)
      terms.push_back({j, rng.uniform(0.0, 1.0)});
    m.add_constraint(std::move(terms), RowType::kLessEqual,
                     rng.uniform(1.0, 6.0));
  }

  SimplexOptions tight;
  tight.max_iterations = 1;
  const Solution starved = solve(m, tight);
  ASSERT_EQ(starved.status, SolveStatus::kIterationLimit);
  EXPECT_LE(starved.iterations, tight.max_iterations + 1);
  EXPECT_FALSE(starved.basis.empty());     // the certificate
  EXPECT_EQ(starved.x.size(), n);          // the point it stopped at

  // The certificate is real state: with the budget restored the same model
  // solves, and its exit basis has the same shape (one column per row).
  const Solution full = solve(m);
  ASSERT_EQ(full.status, SolveStatus::kOptimal);
  EXPECT_EQ(full.basis.size(), starved.basis.size());
  EXPECT_LE(m.max_violation(full.x), 1e-6);
}

TEST(Simplex, OptimalSolutionCarriesExitBasis) {
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0, kInfinity, 3.0, "x");
  auto y = m.add_variable(0, kInfinity, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kLessEqual, 4.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, RowType::kLessEqual, 6.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_EQ(s.basis.size(), 2u);  // one basic column per constraint row
}

}  // namespace
}  // namespace scapegoat::lp
