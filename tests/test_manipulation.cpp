// Tests for the manipulation model: AttackContext derived quantities and
// Constraint 1 validation.

#include "attack/manipulation.hpp"

#include <gtest/gtest.h>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class ManipulationTest : public ::testing::Test {
 protected:
  ManipulationTest()
      : rng_(12), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(ManipulationTest, ControlledLinksAreLinks2Through8) {
  AttackContext ctx = scenario_.context(net_.attackers);
  EXPECT_EQ(ctx.controlled_links(),
            (std::vector<LinkId>{1, 2, 3, 4, 5, 6, 7}));
}

TEST_F(ManipulationTest, AttackerPathIndicesExcludeOnlyPath17) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const auto support = ctx.attacker_path_indices();
  EXPECT_EQ(support.size(), 22u);
  for (std::size_t i : support) EXPECT_NE(i, 16u);
}

TEST_F(ManipulationTest, TrueMeasurementsMatchPathSums) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const Vector y = ctx.true_measurements();
  ASSERT_EQ(y.size(), 23u);
  // Path 17 = links 9, 10 (ids 8, 9).
  EXPECT_NEAR(y[16], ctx.x_true[8] + ctx.x_true[9], 1e-12);
  // Path 3 = links 1, 4, 7, 10 (ids 0, 3, 6, 9).
  EXPECT_NEAR(y[2],
              ctx.x_true[0] + ctx.x_true[3] + ctx.x_true[6] + ctx.x_true[9],
              1e-12);
}

TEST_F(ManipulationTest, Constraint1AcceptsValidVectors) {
  AttackContext ctx = scenario_.context(net_.attackers);
  Vector m(23, 0.0);
  EXPECT_TRUE(satisfies_constraint1(ctx, m));  // zero vector: trivially OK
  m[0] = 150.0;                                // path 1 passes through B
  EXPECT_TRUE(satisfies_constraint1(ctx, m));
}

TEST_F(ManipulationTest, Constraint1RejectsNegativeEntries) {
  AttackContext ctx = scenario_.context(net_.attackers);
  Vector m(23, 0.0);
  m[0] = -1.0;
  EXPECT_FALSE(satisfies_constraint1(ctx, m));
}

TEST_F(ManipulationTest, Constraint1RejectsUncoveredPaths) {
  AttackContext ctx = scenario_.context(net_.attackers);
  Vector m(23, 0.0);
  m[16] = 10.0;  // path 17 has no attacker on it
  EXPECT_FALSE(satisfies_constraint1(ctx, m));
}

TEST_F(ManipulationTest, Constraint1RejectsWrongLength) {
  AttackContext ctx = scenario_.context(net_.attackers);
  EXPECT_FALSE(satisfies_constraint1(ctx, Vector(10, 0.0)));
}

TEST_F(ManipulationTest, VerifyAcceptsLpOutputAndRejectsTampering) {
  AttackContext ctx = scenario_.context(net_.attackers);
  AttackResult r = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(verify_chosen_victim_result(ctx, r));

  // Claiming a controlled link as victim must fail verification.
  AttackResult tampered = r;
  tampered.victims = {1};
  EXPECT_FALSE(verify_chosen_victim_result(ctx, tampered));

  // Violating the support constraint must fail verification.
  AttackResult bad_support = r;
  bad_support.m[16] = 5.0;
  EXPECT_FALSE(verify_chosen_victim_result(ctx, bad_support));

  // Exceeding the per-path cap must fail verification.
  AttackResult over_cap = r;
  over_cap.m[0] = ctx.per_path_cap + 10.0;
  EXPECT_FALSE(verify_chosen_victim_result(ctx, over_cap));

  // Unsuccessful results never verify.
  AttackResult failed;
  EXPECT_FALSE(verify_chosen_victim_result(ctx, failed));
}

TEST_F(ManipulationTest, SingleAttackerHasSmallerFootprint) {
  AttackContext both = scenario_.context(net_.attackers);
  AttackContext only_b = scenario_.context({net_.b});
  EXPECT_LT(only_b.controlled_links().size(),
            both.controlled_links().size());
  EXPECT_LE(only_b.attacker_path_indices().size(),
            both.attacker_path_indices().size());
}

}  // namespace
}  // namespace scapegoat
