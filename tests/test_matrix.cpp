// Unit tests for the dense Matrix/Vector substrate.

#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace scapegoat {
namespace {

TEST(Vector, ConstructionAndIndexing) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[2] = -2.0;
  EXPECT_DOUBLE_EQ(v[2], -2.0);

  Vector init{1.0, 2.0, 3.0};
  EXPECT_EQ(init.size(), 3u);
  EXPECT_DOUBLE_EQ(init[1], 2.0);
}

TEST(Vector, Arithmetic) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, 5.0, 6.0};
  Vector sum = a + b;
  EXPECT_TRUE(approx_equal(sum, Vector{5.0, 7.0, 9.0}));
  Vector diff = b - a;
  EXPECT_TRUE(approx_equal(diff, Vector{3.0, 3.0, 3.0}));
  Vector scaled = 2.0 * a;
  EXPECT_TRUE(approx_equal(scaled, Vector{2.0, 4.0, 6.0}));
}

TEST(Vector, DotAndNorms) {
  Vector a{3.0, -4.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm1(), 7.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
}

TEST(Vector, ComponentwiseGeq) {
  Vector a{1.0, 2.0, 3.0};
  Vector zero(3, 0.0);
  EXPECT_TRUE(a.componentwise_geq(zero));
  EXPECT_FALSE(zero.componentwise_geq(a));
  Vector almost{0.9999999, 2.0, 3.0};
  EXPECT_FALSE(almost.componentwise_geq(a));
  EXPECT_TRUE(almost.componentwise_geq(a, 1e-3));
}

TEST(Matrix, ConstructionAndIdentity) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);

  Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(approx_equal(t.transposed(), m));
}

TEST(Matrix, RowColAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_TRUE(approx_equal(m.row(1), Vector{3.0, 4.0}));
  EXPECT_TRUE(approx_equal(m.col(0), Vector{1.0, 3.0, 5.0}));
  m.set_row(0, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
}

TEST(Matrix, MatrixMatrixProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix ab = a * b;
  EXPECT_TRUE(approx_equal(ab, Matrix{{19.0, 22.0}, {43.0, 50.0}}));

  // Identity is neutral.
  EXPECT_TRUE(approx_equal(Matrix::identity(2) * a, a));
  EXPECT_TRUE(approx_equal(a * Matrix::identity(2), a));
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1.0, 0.0, 2.0}, {0.0, 3.0, 0.0}};
  Vector x{1.0, 2.0, 3.0};
  EXPECT_TRUE(approx_equal(a * x, Vector{7.0, 6.0}));
}

TEST(Matrix, NonSquareProductShapes) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 1.0);
  Matrix ab = a * b;
  EXPECT_EQ(ab.rows(), 2u);
  EXPECT_EQ(ab.cols(), 4u);
  EXPECT_DOUBLE_EQ(ab(0, 0), 3.0);
}

TEST(Matrix, Norms) {
  Matrix m{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.norm_fro(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_TRUE(approx_equal(a + b, Matrix{{2.0, 3.0}, {4.0, 5.0}}));
  EXPECT_TRUE(approx_equal(a - b, Matrix{{0.0, 1.0}, {2.0, 3.0}}));
  EXPECT_TRUE(approx_equal(0.5 * a, Matrix{{0.5, 1.0}, {1.5, 2.0}}));
}

TEST(Matrix, ApproxEqualRespectsShapeAndTolerance) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 3, 1.0);
  EXPECT_FALSE(approx_equal(a, b));
  Matrix c(2, 2, 1.0 + 1e-12);
  EXPECT_TRUE(approx_equal(a, c));
  Matrix d(2, 2, 1.1);
  EXPECT_FALSE(approx_equal(a, d));
}

}  // namespace
}  // namespace scapegoat
