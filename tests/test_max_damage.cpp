// Focused tests for the maximum-damage strategy (Eq. 8).

#include "attack/max_damage.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class MaxDamageTest : public ::testing::Test {
 protected:
  MaxDamageTest()
      : rng_(41), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(MaxDamageTest, DominatesEveryChosenVictimAttack) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const MaxDamageResult md = max_damage_attack(ctx);
  ASSERT_TRUE(md.best.success);
  // Explicit cross-check against each possible single victim (not just the
  // ones the candidate filter kept).
  for (LinkId v : {LinkId{0}, LinkId{8}, LinkId{9}}) {
    const AttackResult r = chosen_victim_attack(ctx, {v});
    if (r.success) EXPECT_GE(md.best.damage + 1e-6, r.damage);
  }
}

TEST_F(MaxDamageTest, SingleVictimDamagesSortedDescending) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const MaxDamageResult md = max_damage_attack(ctx);
  for (std::size_t i = 1; i < md.single_victim_damages.size(); ++i) {
    EXPECT_GE(md.single_victim_damages[i - 1].second + 1e-9,
              md.single_victim_damages[i].second);
  }
}

TEST_F(MaxDamageTest, VictimsNeverIncludeControlledLinks) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const MaxDamageResult md = max_damage_attack(ctx);
  ASSERT_TRUE(md.best.success);
  const auto lm = ctx.controlled_links();
  for (LinkId v : md.best.victims)
    EXPECT_TRUE(std::find(lm.begin(), lm.end(), v) == lm.end());
}

TEST_F(MaxDamageTest, DisablingJointSearchStillSucceeds) {
  AttackContext ctx = scenario_.context(net_.attackers);
  MaxDamageOptions opt;
  opt.joint_victims = false;
  const MaxDamageResult md = max_damage_attack(ctx, opt);
  ASSERT_TRUE(md.best.success);
  EXPECT_EQ(md.best.victims.size(), 1u);
}

TEST_F(MaxDamageTest, JointSearchNeverLosesToSingleVictim) {
  AttackContext ctx = scenario_.context(net_.attackers);
  MaxDamageOptions single;
  single.joint_victims = false;
  MaxDamageOptions joint;
  joint.joint_victims = true;
  const double d_single = max_damage_attack(ctx, single).best.damage;
  const double d_joint = max_damage_attack(ctx, joint).best.damage;
  EXPECT_GE(d_joint + 1e-6, d_single);
}

TEST_F(MaxDamageTest, CandidateRestrictionIsHonored) {
  AttackContext ctx = scenario_.context(net_.attackers);
  MaxDamageOptions opt;
  opt.candidate_victims = std::vector<LinkId>{9};  // only link 10 allowed
  const MaxDamageResult md = max_damage_attack(ctx, opt);
  ASSERT_TRUE(md.best.success);
  EXPECT_EQ(md.best.victims, (std::vector<LinkId>{9}));
}

TEST_F(MaxDamageTest, EmptyCandidateSetFails) {
  AttackContext ctx = scenario_.context(net_.attackers);
  MaxDamageOptions opt;
  opt.candidate_victims = std::vector<LinkId>{};
  const MaxDamageResult md = max_damage_attack(ctx, opt);
  EXPECT_FALSE(md.best.success);
  EXPECT_TRUE(md.single_victim_damages.empty());
}

TEST_F(MaxDamageTest, NoAttackersNoDamage) {
  AttackContext ctx = scenario_.context({});
  const MaxDamageResult md = max_damage_attack(ctx);
  EXPECT_FALSE(md.best.success);
}

TEST_F(MaxDamageTest, SingleAttackerBStillFindsAVictim) {
  // Node B alone covers enough paths in Fig. 1 to scapegoat something —
  // the paper's point that "even for a single attacker, network tomography
  // is vulnerable".
  AttackContext ctx = scenario_.context({net_.b});
  const MaxDamageResult md = max_damage_attack(ctx);
  EXPECT_TRUE(md.best.success);
}

}  // namespace
}  // namespace scapegoat
