// Tests for monitor placement: the loop must always end identifiable on a
// connected graph, and degree-1 nodes must be monitors.

#include "tomography/monitor_placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "tomography/routing_matrix.hpp"
#include "topology/generators.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"

namespace scapegoat {
namespace {

void expect_identifiable_placement(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  MonitorPlacementResult res = place_monitors(g, MonitorPlacementOptions{}, rng);
  ASSERT_TRUE(res.identifiable);
  EXPECT_EQ(res.rank, g.num_links());
  EXPECT_TRUE(is_identifiable(routing_matrix(g, res.paths)));
  EXPECT_GE(res.monitors.size(), 2u);
  // Degree-1 nodes must be monitors (their stub link is unmeasurable
  // otherwise).
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (g.degree(v) == 1) {
      EXPECT_TRUE(std::find(res.monitors.begin(), res.monitors.end(), v) !=
                  res.monitors.end());
    }
  }
}

TEST(MonitorPlacement, CompleteGraph) {
  expect_identifiable_placement(complete(8), 1);
}

TEST(MonitorPlacement, Grid) { expect_identifiable_placement(grid(4, 4), 2); }

TEST(MonitorPlacement, Ring) { expect_identifiable_placement(ring(8), 3); }

TEST(MonitorPlacement, ChainForcesAllMonitors) {
  // On a chain every interior node is an articulation point of degree 2:
  // identifiability requires essentially every node to become a monitor.
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(3, 4);
  expect_identifiable_placement(g, 4);
}

TEST(MonitorPlacement, StarGraph) {
  // Hub + 5 leaves: all leaves are degree-1 ⇒ monitors; pairwise 2-hop
  // paths identify all spokes... they don't (each path covers 2 spokes), but
  // the hub can be promoted. The loop must sort this out by itself.
  Graph g(6);
  for (NodeId leaf = 1; leaf < 6; ++leaf) g.add_link(0, leaf);
  expect_identifiable_placement(g, 5);
}

TEST(MonitorPlacement, IspTopology) {
  Rng rng(6);
  expect_identifiable_placement(isp_topology(IspParams{}, rng), 7);
}

TEST(MonitorPlacement, GeometricTopology) {
  Rng rng(8);
  GeometricParams p;
  p.num_nodes = 60;  // keep the test quick
  expect_identifiable_placement(random_geometric(p, rng).graph, 9);
}

TEST(MonitorPlacement, RedundantPathsRequestHonored) {
  Rng rng(10);
  MonitorPlacementOptions opt;
  opt.path_options.redundant_paths = 5;
  Graph g = complete(7);
  MonitorPlacementResult res = place_monitors(g, opt, rng);
  ASSERT_TRUE(res.identifiable);
  EXPECT_GT(res.paths.size(), g.num_links());  // strictly tall R
}

}  // namespace
}  // namespace scapegoat
