// The multicast MLE family: logical tree construction (chain collapse and
// its error taxonomy), the gamma passes, the Cáceres recursion against
// hand-computed two-leaf numbers, the degree-3 fixed point, the typed
// refusals, and the MulticastMleEstimator's interface conformance next to
// the other two EstimatorKinds.

#include "tomography/multicast_mle.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/scenario.hpp"
#include "tomography/estimator_interface.hpp"

namespace scapegoat {
namespace {

// root 0 —l0→ 1, then 1 —l1→ 2 and 1 —l2→ 3; receivers {2, 3}. The classic
// shared-link two-leaf shape with a one-link chain.
Graph two_leaf_graph() {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(1, 3);
  return g;
}

TEST(MulticastTree, CollapsesRelayChains) {
  // 0 — 1 — 2 is pass-through; the split happens at 2.
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(2, 4);
  const auto tree = build_multicast_tree(g, 0, {3, 4});
  ASSERT_TRUE(tree.ok()) << tree.error_message();
  ASSERT_TRUE(tree->valid());
  ASSERT_EQ(tree->num_nodes(), 4u);  // root, branch point, two leaves
  EXPECT_EQ(tree->num_leaves(), 2u);
  // The logical root→branch link is the two-link physical chain 0—1—2.
  const MulticastTreeNode& branch = tree->nodes[1];
  EXPECT_EQ(branch.graph_node, NodeId{2});
  ASSERT_EQ(branch.chain.size(), 2u);
  EXPECT_EQ(branch.chain_nodes.back(), NodeId{2});
  // Leaf order follows the receivers argument.
  EXPECT_EQ(tree->nodes[tree->leaves[0]].graph_node, NodeId{3});
  EXPECT_EQ(tree->nodes[tree->leaves[1]].graph_node, NodeId{4});
}

TEST(MulticastTree, BuildRefusalTaxonomy) {
  const Graph g = two_leaf_graph();
  EXPECT_EQ(build_multicast_tree(g, 0, {}).code(),
            robust::ErrorCode::kEmptyInput);
  EXPECT_EQ(build_multicast_tree(g, 0, {2, 2}).code(),
            robust::ErrorCode::kInvalidInput);
  EXPECT_EQ(build_multicast_tree(g, 0, {0, 2}).code(),
            robust::ErrorCode::kInvalidInput);
  // A receiver on another receiver's path: 1 sits on root→2.
  EXPECT_EQ(build_multicast_tree(g, 0, {1, 2}).code(),
            robust::ErrorCode::kInvalidInput);
  // Unreachable receiver.
  Graph split(5);
  split.add_link(0, 1);
  split.add_link(3, 4);
  EXPECT_EQ(build_multicast_tree(split, 0, {1, 4}).code(),
            robust::ErrorCode::kInvalidInput);
}

TEST(MulticastTree, LeafPathsRoundTripThroughPathReconstruction) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  const auto paths = tree->leaf_paths();
  ASSERT_EQ(paths.size(), 2u);
  const auto rebuilt = multicast_tree_from_paths(g, paths);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error_message();
  ASSERT_EQ(rebuilt->num_nodes(), tree->num_nodes());
  for (std::size_t k = 0; k < tree->num_nodes(); ++k) {
    EXPECT_EQ(rebuilt->nodes[k].parent, tree->nodes[k].parent);
    EXPECT_EQ(rebuilt->nodes[k].graph_node, tree->nodes[k].graph_node);
    EXPECT_EQ(rebuilt->nodes[k].chain, tree->nodes[k].chain);
  }
}

TEST(MulticastGamma, AccumulateAndComputeAgree) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  const std::vector<std::vector<std::uint8_t>> outcomes{
      {1, 1}, {1, 0}, {0, 1}, {0, 0}};
  const Vector gamma = compute_gamma(*tree, outcomes);
  ASSERT_EQ(gamma.size(), 4u);
  EXPECT_NEAR(gamma[0], 0.75, 1e-12);  // root OR = any leaf reached
  EXPECT_NEAR(gamma[1], 0.75, 1e-12);
  std::vector<std::size_t> counts(tree->num_nodes(), 0);
  for (const auto& row : outcomes) accumulate_gamma_counts(*tree, row, counts);
  for (std::size_t k = 0; k < counts.size(); ++k)
    EXPECT_NEAR(static_cast<double>(counts[k]) / 4.0, gamma[k], 1e-12) << k;
}

TEST(MulticastGamma, ModelAndIndependenceSynthesisByHand) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  const Vector alpha{1.0, 0.9, 0.8, 0.5};
  const Vector gamma = model_gammas(*tree, alpha);
  // γ_leaf = A_parent·α_leaf; γ_internal = A·(1 − (1−0.8)(1−0.5)).
  EXPECT_NEAR(gamma[2], 0.9 * 0.8, 1e-12);
  EXPECT_NEAR(gamma[3], 0.9 * 0.5, 1e-12);
  EXPECT_NEAR(gamma[1], 0.9 * (1.0 - 0.2 * 0.5), 1e-12);
  EXPECT_NEAR(gamma[0], gamma[1], 1e-12);  // root OR == child OR here
  const Vector synth = independence_gammas(*tree, Vector{0.72, 0.45});
  EXPECT_NEAR(synth[2], 0.72, 1e-12);
  EXPECT_NEAR(synth[3], 0.45, 1e-12);
  EXPECT_NEAR(synth[1], 1.0 - 0.28 * 0.55, 1e-12);
}

TEST(MulticastMle, TwoLeafNumbersByHand) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  // γ̂ = {0.95, 0.95, 0.8, 0.9}: Â₁ = 0.72/0.75 = 0.96, α̂ = {0.96, 5/6,
  // 0.9375} — the worked example every MINC derivation prints.
  const Vector gammas{0.95, 0.95, 0.8, 0.9};
  const auto fit = solve_multicast_mle(g.num_links(), *tree, gammas);
  ASSERT_TRUE(fit.ok()) << fit.error_message();
  EXPECT_NEAR(fit->node_reach[1], 0.96, 1e-12);
  EXPECT_NEAR(fit->link_success[1], 0.96, 1e-12);
  EXPECT_NEAR(fit->link_success[2], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(fit->link_success[3], 0.9375, 1e-12);
  EXPECT_EQ(fit->clamped, 0u);
  EXPECT_EQ(fit->fixed_point_nodes, 0u);  // binary: closed form only
  // Consistent γ̂ interpolate exactly — the residual statistic vanishes.
  EXPECT_NEAR(fit->residual, 0.0, 1e-12);
  // x is the physical loss-metric vector: −log α̂ on each chain link.
  ASSERT_EQ(fit->x.size(), g.num_links());
  EXPECT_NEAR(fit->x[0], -std::log(0.96), 1e-12);
  EXPECT_NEAR(fit->x[1], -std::log(5.0 / 6.0), 1e-12);
  EXPECT_NEAR(fit->x[2], -std::log(0.9375), 1e-12);
}

TEST(MulticastMle, ChainSplitsTheLogicalMetricUniformly) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(2, 4);
  const auto tree = build_multicast_tree(g, 0, {3, 4});
  ASSERT_TRUE(tree.ok());
  const auto fit =
      solve_multicast_mle(g.num_links(), *tree, Vector{0.95, 0.95, 0.8, 0.9});
  ASSERT_TRUE(fit.ok());
  // The shared logical link is the physical chain {l0, l1}: −log 0.96 split
  // in half per link.
  EXPECT_NEAR(fit->x[0], -std::log(0.96) / 2.0, 1e-12);
  EXPECT_NEAR(fit->x[1], -std::log(0.96) / 2.0, 1e-12);
}

TEST(MulticastMle, DegreeThreeFixedPointRecoversTheRates) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(1, 3);
  g.add_link(1, 4);
  const auto tree = build_multicast_tree(g, 0, {2, 3, 4});
  ASSERT_TRUE(tree.ok());
  const Vector alpha{1.0, 0.9, 0.8, 0.7, 0.6};
  const auto fit =
      solve_multicast_mle(g.num_links(), *tree, model_gammas(*tree, alpha));
  ASSERT_TRUE(fit.ok()) << fit.error_message();
  EXPECT_EQ(fit->fixed_point_nodes, 1u);
  EXPECT_TRUE(fit->converged);
  for (std::size_t k = 1; k < 5; ++k)
    EXPECT_NEAR(fit->link_success[k], alpha[k], 1e-9) << "node " << k;
  EXPECT_NEAR(fit->residual, 0.0, 1e-9);
}

TEST(MulticastMle, RefusalTaxonomy) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(solve_multicast_mle(g.num_links(), *tree, Vector{0.9, 0.9}).code(),
            robust::ErrorCode::kDimensionMismatch);
  EXPECT_EQ(solve_multicast_mle(g.num_links(), *tree,
                                Vector{0.9, 0.9, 1.2, 0.9})
                .code(),
            robust::ErrorCode::kInvalidInput);
  // A dead leaf has no finite loss metric: typed refusal, not NaN.
  EXPECT_EQ(solve_multicast_mle(g.num_links(), *tree,
                                Vector{0.9, 0.9, 0.0, 0.9})
                .code(),
            robust::ErrorCode::kMissingData);
  MulticastObservation obs;
  EXPECT_EQ(solve_multicast_mle(g.num_links(), *tree, obs).code(),
            robust::ErrorCode::kEmptyInput);
  obs.probes = 10;
  obs.reach_count = {9, 9, 11, 9};  // count exceeds the probe total
  EXPECT_EQ(solve_multicast_mle(g.num_links(), *tree, obs).code(),
            robust::ErrorCode::kInvalidInput);
}

TEST(MulticastMle, AntiCorrelatedSiblingsClampAndLeaveResidual) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  // Siblings that almost never fail together: γ_or far above what any
  // independent-loss tree admits, so Â₁ = 0.25/0.1 = 2.5 > 1 → clamp, and
  // the clamped fit can no longer interpolate the γ̂'s.
  const auto fit = solve_multicast_mle(g.num_links(), *tree,
                                       Vector{0.9, 0.9, 0.5, 0.5});
  ASSERT_TRUE(fit.ok()) << fit.error_message();
  EXPECT_GE(fit->clamped, 1u);
  EXPECT_GT(fit->residual, 0.05);
}

// ---- the estimator family -------------------------------------------------

TEST(MulticastMleEstimatorTest, IndependenceCompletionIsBlindToSharedLoss) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  const MulticastMleEstimator est(g, *tree);
  ASSERT_TRUE(est.has_tree());
  // Marginals alone: y from true rates with a lossy shared link.
  const Vector y{-std::log(0.9 * 0.8), -std::log(0.9 * 0.5)};
  const Vector x = est.estimate(y);
  // Under the independence completion the internal closed form collapses to
  // Â = 1: the shared link looks perfect and all loss lands on the leaves.
  EXPECT_NEAR(x[0], 0.0, 1e-9);
  EXPECT_NEAR(x[1], -std::log(0.9 * 0.8), 1e-9);
  EXPECT_NEAR(x[2], -std::log(0.9 * 0.5), 1e-9);
  EXPECT_NEAR(est.residual_statistic(y), 0.0, 1e-9);
}

TEST(MulticastMleEstimatorTest, IngestedJointCountsRecoverTheSharedLink) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  MulticastMleEstimator est(g, *tree);
  // Joint OR counts consistent with α = {0.9, 0.8, 0.5}: γ computed from
  // the model at 1000 probes (exact, so the fit interpolates).
  const Vector gamma = model_gammas(*tree, Vector{1.0, 0.9, 0.8, 0.5});
  MulticastObservation obs;
  obs.probes = 1000;
  obs.reach_count.resize(4);
  for (std::size_t k = 0; k < 4; ++k)
    obs.reach_count[k] =
        static_cast<std::size_t>(std::lround(gamma[k] * 1000.0));
  est.ingest(obs);
  ASSERT_TRUE(est.observation().has_value());
  const Vector y{-std::log(obs.gamma(2)), -std::log(obs.gamma(3))};
  const Vector x = est.estimate(y);
  EXPECT_NEAR(x[0], -std::log(0.9), 5e-3);
  EXPECT_NEAR(x[1], -std::log(0.8), 5e-3);
  EXPECT_NEAR(x[2], -std::log(0.5), 5e-3);
  EXPECT_NEAR(est.residual_statistic(y), 0.0, 1e-9);
  est.clear_observation();
  EXPECT_FALSE(est.observation().has_value());
  // Back to the blind completion.
  EXPECT_NEAR(est.estimate(y)[0], 0.0, 1e-9);
}

TEST(MulticastMleEstimatorTest, TryEstimateSurfacesDeadLeavesAsTypedError) {
  const Graph g = two_leaf_graph();
  const auto tree = build_multicast_tree(g, 0, {2, 3});
  ASSERT_TRUE(tree.ok());
  MulticastMleEstimator est(g, *tree);
  MulticastObservation obs;
  obs.probes = 100;
  obs.reach_count = {90, 90, 0, 90};  // leaf 0 never reached
  est.ingest(obs);
  const Vector y{-std::log(est.options().pass_floor), -std::log(0.9)};
  const auto attempt = est.try_estimate(y);
  ASSERT_FALSE(attempt.ok());
  EXPECT_EQ(attempt.code(), robust::ErrorCode::kMissingData);
  // estimate() stays total on the same input.
  const Vector x = est.estimate(y);
  for (std::size_t j = 0; j < x.size(); ++j)
    EXPECT_TRUE(std::isfinite(x[j])) << j;
}

TEST(MulticastMleEstimatorTest, InterfaceConformanceAcrossAllThreeKinds) {
  Rng rng(31);
  const Scenario scenario = Scenario::fig1(rng);
  const Vector y = scenario.clean_measurements();
  for (const EstimatorKind kind :
       {EstimatorKind::kLeastSquares, EstimatorKind::kSparseRecovery,
        EstimatorKind::kMulticastMle}) {
    EstimatorOptions opt;
    opt.sparse_prior = scenario.x_true();
    const auto est = make_estimator(kind, scenario.graph(),
                                    scenario.estimator().paths(), opt);
    ASSERT_NE(est, nullptr) << to_string(kind);
    EXPECT_EQ(est->method(), kind);
    ASSERT_TRUE(est->ok()) << to_string(kind);
    // clone() preserves the family and the answers.
    const std::unique_ptr<Estimator> copy = est->clone();
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->method(), kind);
    const Vector a = est->estimate(y);
    const Vector b = copy->estimate(y);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j)
      EXPECT_EQ(a[j], b[j]) << to_string(kind) << " link " << j;
    // streaming_estimate is total and dimensioned like estimate.
    EXPECT_EQ(est->streaming_estimate(y).size(), a.size());
    // Clean measurements leave every family's residual statistic at zero.
    EXPECT_NEAR(est->residual_statistic(y), 0.0, 1e-6) << to_string(kind);
    const auto attempt = est->try_estimate(y);
    ASSERT_TRUE(attempt.ok()) << to_string(kind);
  }
}

TEST(MulticastMleEstimatorTest, NonTreePathSetsDegradeToThePseudoInverse) {
  // Scenario paths are a unicast mesh, not a rooted tree: the factory-shape
  // constructor must keep the linear fallback (documented, not an error).
  Rng rng(7);
  const Scenario scenario = Scenario::fig1(rng);
  const MulticastMleEstimator est(scenario.graph(),
                                  scenario.estimator().paths());
  EXPECT_FALSE(est.has_tree());
  const Vector y = scenario.clean_measurements();
  const Vector mine = est.estimate(y);
  const Vector linear = scenario.estimator().estimate(y);
  ASSERT_EQ(mine.size(), linear.size());
  for (std::size_t j = 0; j < mine.size(); ++j)
    EXPECT_NEAR(mine[j], linear[j], 1e-9) << j;
}

}  // namespace
}  // namespace scapegoat
