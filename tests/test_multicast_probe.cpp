// The multicast probe simulator: counter bookkeeping, delivery statistics,
// grey-hole adversary semantics (independent vs exclusive coins), the
// histogram cap, and the bitwise thread-count-independence contract the
// header promises.

#include "simnet/multicast_probe.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/graph.hpp"

namespace scapegoat::simnet {
namespace {

// root 0 → 1, then 1 → {2, 3}; receivers {2, 3}.
robust::Expected<MulticastTree> two_leaf_tree(Graph& g) {
  g = Graph(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(1, 3);
  return build_multicast_tree(g, 0, {2, 3});
}

TEST(ProbeModeIo, RoundTripsAndRejectsUnknown) {
  for (const ProbeMode mode : {ProbeMode::kUnicast, ProbeMode::kMulticast}) {
    const auto back = probe_mode_from_string(to_string(mode));
    ASSERT_TRUE(back.has_value()) << to_string(mode);
    EXPECT_EQ(*back, mode);
    std::ostringstream os;
    os << mode;
    EXPECT_EQ(os.str(), to_string(mode));
  }
  EXPECT_FALSE(probe_mode_from_string("anycast").has_value());
}

TEST(MulticastProbe, PerfectLinksDeliverEveryProbe) {
  Graph g;
  const auto tree = two_leaf_tree(g);
  ASSERT_TRUE(tree.ok());
  MulticastProbeOptions opt;
  opt.probes = 200;
  const MulticastProbeRun run = run_multicast_probes(*tree, opt);
  EXPECT_EQ(run.probes_sent, 200u);
  for (std::size_t k = 0; k < tree->num_nodes(); ++k)
    EXPECT_EQ(run.obs.reach_count[k], 200u) << k;
  for (const std::size_t reached : run.leaf_reached) EXPECT_EQ(reached, 200u);
  // Histogram: every probe lands in the all-leaves-reached bucket.
  ASSERT_EQ(run.outcome_counts.size(), 4u);
  EXPECT_EQ(run.outcome_counts[3], 200u);
  const Vector y = run.leaf_loss_metrics();
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], 0.0) << i;
}

TEST(MulticastProbe, DeliveryRatesMatchTheLawOfLargeNumbers) {
  Graph g;
  const auto tree = two_leaf_tree(g);
  ASSERT_TRUE(tree.ok());
  MulticastProbeOptions opt;
  opt.probes = 20000;
  opt.seed = 0xfeedULL;
  opt.link_delivery = {0.9, 0.8, 0.6};
  const MulticastProbeRun run = run_multicast_probes(*tree, opt);
  const double n = static_cast<double>(run.probes_sent);
  // Leaf pass rates ≈ chain products 0.72 and 0.54 (±2% at 20k probes).
  EXPECT_NEAR(static_cast<double>(run.leaf_reached[0]) / n, 0.72, 0.02);
  EXPECT_NEAR(static_cast<double>(run.leaf_reached[1]) / n, 0.54, 0.02);
  // Internal OR count ≈ 0.9·(1 − 0.4·0.2).
  EXPECT_NEAR(run.obs.gamma(1), 0.9 * (1.0 - 0.4 * 0.2), 0.02);
  // Metrics are −log of the empirical pass rates.
  const Vector y = run.leaf_loss_metrics();
  EXPECT_NEAR(y[0], -std::log(run.obs.gamma(2)), 1e-12);
  EXPECT_NEAR(y[1], -std::log(run.obs.gamma(3)), 1e-12);
}

TEST(MulticastProbe, IndependentGreyHoleDrainsOnlyTheVictimSubtree) {
  Graph g;
  const auto tree = two_leaf_tree(g);
  ASSERT_TRUE(tree.ok());
  // Adversary at the branch point drops the copy into leaf node 2's subtree
  // 30% of the time; the sibling leaf is untouched.
  MulticastAdversary adv;
  adv.rules = {{1, 2}};
  adv.drop_rate = 0.3;
  MulticastProbeOptions opt;
  opt.probes = 20000;
  opt.seed = 0xabcULL;
  opt.adversary = &adv;
  const MulticastProbeRun run = run_multicast_probes(*tree, opt);
  const double n = static_cast<double>(run.probes_sent);
  EXPECT_NEAR(static_cast<double>(run.leaf_reached[0]) / n, 0.7, 0.02);
  EXPECT_EQ(run.leaf_reached[1], run.probes_sent);
}

TEST(MulticastProbe, ExclusiveCoinNeverFiresTwoRulesOnOneProbe) {
  Graph g;
  const auto tree = two_leaf_tree(g);
  ASSERT_TRUE(tree.ok());
  // Both subtrees targeted at 40% under ONE shared exclusive coin: at most
  // one rule fires per probe, so no probe ever loses both leaves to the
  // adversary — with perfect links the both-lost histogram bucket is empty,
  // while independent coins at the same rate lose both ≈ 16% of the time.
  MulticastAdversary adv;
  adv.rules = {{1, 2}, {1, 3}};
  adv.drop_rate = 0.4;
  adv.exclusive = true;
  MulticastProbeOptions opt;
  opt.probes = 20000;
  opt.seed = 0x5eedULL;
  opt.adversary = &adv;
  const MulticastProbeRun run = run_multicast_probes(*tree, opt);
  ASSERT_EQ(run.outcome_counts.size(), 4u);
  EXPECT_EQ(run.outcome_counts[0], 0u);  // anti-correlation: never both lost
  EXPECT_NEAR(static_cast<double>(run.leaf_reached[0]) / 20000.0, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(run.leaf_reached[1]) / 20000.0, 0.6, 0.02);

  adv.exclusive = false;
  const MulticastProbeRun indep = run_multicast_probes(*tree, opt);
  EXPECT_NEAR(static_cast<double>(indep.outcome_counts[0]) / 20000.0, 0.16,
              0.02);
}

TEST(MulticastProbe, HistogramSkipsTreesOverTheLeafCap) {
  Graph g;
  const auto tree = two_leaf_tree(g);
  ASSERT_TRUE(tree.ok());
  MulticastProbeOptions opt;
  opt.probes = 50;
  opt.histogram_max_leaves = 1;
  const MulticastProbeRun run = run_multicast_probes(*tree, opt);
  EXPECT_TRUE(run.outcome_counts.empty());
  EXPECT_EQ(run.obs.reach_count[0], 50u);  // OR counts still accumulate
}

TEST(MulticastProbe, ScheduleIsBitwiseIdenticalAcrossThreadCounts) {
  // Deeper tree + adversary + lossy links, so every code path participates.
  Graph g(7);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  g.add_link(2, 4);
  g.add_link(1, 5);
  g.add_link(5, 6);
  const auto tree = build_multicast_tree(g, 0, {3, 4, 6});
  ASSERT_TRUE(tree.ok());
  MulticastAdversary adv;
  adv.rules = {{2, 3}, {2, 4}};
  adv.drop_rate = 0.25;
  adv.exclusive = true;
  MulticastProbeOptions opt;
  opt.probes = 4111;  // deliberately not a multiple of any chunk size
  opt.seed = 0xdecafULL;
  opt.link_delivery = {0.95, 0.9, 0.85, 0.8, 0.99, 0.75};
  opt.adversary = &adv;

  opt.threads = 1;
  const MulticastProbeRun base = run_multicast_probes(*tree, opt);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    opt.threads = threads;
    const MulticastProbeRun run = run_multicast_probes(*tree, opt);
    EXPECT_EQ(run.probes_sent, base.probes_sent) << threads;
    EXPECT_EQ(run.obs.reach_count, base.obs.reach_count)
        << threads << " threads";
    EXPECT_EQ(run.leaf_reached, base.leaf_reached) << threads << " threads";
    EXPECT_EQ(run.outcome_counts, base.outcome_counts)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace scapegoat::simnet
