// Tests for the §II-C naive-attacker baseline: uniform delaying exposes the
// attacker instead of framing a scapegoat.

#include "attack/naive_attack.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class NaiveAttackTest : public ::testing::Test {
 protected:
  NaiveAttackTest()
      : rng_(601), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(NaiveAttackTest, ManipulationShapeFollowsNodeMembership) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = naive_delay_attack(ctx, 500.0);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(satisfies_constraint1(ctx, r.m));
  const auto& paths = scenario_.estimator().paths();
  for (std::size_t i = 0; i < paths.size(); ++i) {
    double expected = 0.0;
    if (paths[i].contains_node(net_.b)) expected += 500.0;
    if (paths[i].contains_node(net_.c)) expected += 500.0;
    EXPECT_NEAR(r.m[i], expected, 1e-12) << "path " << i;
  }
}

TEST_F(NaiveAttackTest, AttackerAdjacentLinksGetTheBlame) {
  // The paper's §II-C point: naive delaying makes the links around B and C
  // look bad — no scapegoating happens.
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = naive_delay_attack(ctx, 800.0);
  ASSERT_TRUE(r.success);
  // Some controlled link must read abnormal...
  bool controlled_flagged = false;
  for (LinkId l : ctx.controlled_links())
    controlled_flagged |= r.states[l] == LinkState::kAbnormal;
  EXPECT_TRUE(controlled_flagged);
  // ...and no non-controlled link should read worse than the worst
  // controlled link.
  double worst_controlled = 0.0;
  for (LinkId l : ctx.controlled_links())
    worst_controlled = std::max(worst_controlled, r.x_estimated[l]);
  for (LinkId l : {LinkId{0}, LinkId{8}, LinkId{9}}) {
    EXPECT_LE(r.x_estimated[l], worst_controlled + 1e-6) << "link " << l;
  }
}

TEST_F(NaiveAttackTest, ContrastWithScapegoatingOnSameBudget) {
  // Given the damage budget the naive attack spends, the LP attacker hides
  // completely while the naive one lights up its own links.
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult naive = naive_delay_attack(ctx, 600.0);
  const AttackResult crafted = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(naive.success);
  ASSERT_TRUE(crafted.success);
  for (LinkId l : ctx.controlled_links())
    EXPECT_EQ(crafted.states[l], LinkState::kNormal);
  bool naive_exposed = false;
  for (LinkId l : ctx.controlled_links())
    naive_exposed |= naive.states[l] != LinkState::kNormal;
  EXPECT_TRUE(naive_exposed);
}

TEST_F(NaiveAttackTest, PerNodeDelaysAreIndividallyApplied) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = naive_delay_attack(ctx, {100.0, 900.0});
  ASSERT_TRUE(r.success);
  const auto& paths = scenario_.estimator().paths();
  // Path 1 (M1 A B M2) has only B: 100ms. Path 12 (M1 A C M3) only C: 900.
  EXPECT_NEAR(r.m[0], 100.0, 1e-12);
  EXPECT_NEAR(r.m[11], 900.0, 1e-12);
  // Path 13 (M1 A B C M3) has both: 1000.
  EXPECT_NEAR(r.m[12], 1000.0, 1e-12);
  (void)paths;
}

TEST_F(NaiveAttackTest, ZeroDelayIsNoAttack) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = naive_delay_attack(ctx, 0.0);
  EXPECT_FALSE(r.success);
  EXPECT_NEAR(r.damage, 0.0, 1e-12);
}

TEST_F(NaiveAttackTest, NaiveAttackIsModelConsistentHenceUndetected) {
  // Uniform node delay IS link-explainable: a simple path visiting an
  // interior node crosses exactly two of its incident links, so putting
  // d_v/2 on each of v's links reproduces m exactly (R Δx = m). The Eq. 23
  // residual check therefore does NOT fire on naive attacks — they are
  // caught at the classification layer instead (the attacker's own links
  // read abnormal). This pins down that division of labor.
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = naive_delay_attack(ctx, 700.0);
  ASSERT_TRUE(r.success);
  const DetectionOutcome d =
      detect_scapegoating(scenario_.estimator(), r.y_observed);
  EXPECT_FALSE(d.detected);
  EXPECT_NEAR(d.residual_norm1, 0.0, 1e-5);
}

}  // namespace
}  // namespace scapegoat
