// Focused tests for the obfuscation strategy (Eq. 9-11).

#include "attack/obfuscation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/scenario.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class ObfuscationTest : public ::testing::Test {
 protected:
  ObfuscationTest()
      : rng_(51), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(ObfuscationTest, AllLinksLandInUncertainBand) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  // L_o = L_m ∪ L_s must be uncertain.
  for (LinkId l : ctx.controlled_links())
    EXPECT_EQ(r.states[l], LinkState::kUncertain);
  for (LinkId v : r.victims) EXPECT_EQ(r.states[v], LinkState::kUncertain);
  // On Fig. 1 the attacker influences everything: all 10 links uncertain.
  for (LinkId l = 0; l < r.states.size(); ++l)
    EXPECT_EQ(r.states[l], LinkState::kUncertain) << "link " << l;
}

TEST_F(ObfuscationTest, EstimatesStayInsideNumericBand) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  for (LinkId v : r.victims) {
    EXPECT_GE(r.x_estimated[v], ctx.thresholds.lower - 1e-6);
    EXPECT_LE(r.x_estimated[v], ctx.thresholds.upper + 1e-6);
  }
}

TEST_F(ObfuscationTest, VictimsExcludeControlledLinks) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  const auto lm = ctx.controlled_links();
  for (LinkId v : r.victims)
    EXPECT_TRUE(std::find(lm.begin(), lm.end(), v) == lm.end());
}

TEST_F(ObfuscationTest, MinVictimsGateFailsWhenTooFewCandidates) {
  // Fig. 1 has only 3 non-controlled links; demanding 5 victims must fail.
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 5;
  const AttackResult r = obfuscation_attack(ctx, opt);
  EXPECT_FALSE(r.success);
}

TEST_F(ObfuscationTest, Constraint1AndCapHold) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  EXPECT_TRUE(satisfies_constraint1(ctx, r.m));
  for (double mi : r.m) EXPECT_LE(mi, ctx.per_path_cap + 1e-6);
}

TEST_F(ObfuscationTest, CandidateRestrictionHonored) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;
  opt.candidate_victims = std::vector<LinkId>{0};  // only link 1 may join L_s
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.victims, (std::vector<LinkId>{0}));
}

TEST_F(ObfuscationTest, DamageIsPositiveAndSubstantial) {
  AttackContext ctx = scenario_.context(net_.attackers);
  ObfuscationOptions opt;
  opt.min_victims = 1;
  const AttackResult r = obfuscation_attack(ctx, opt);
  ASSERT_TRUE(r.success);
  // Pushing ~10 links into the 100-800 ms band requires thousands of ms of
  // injected path delay.
  EXPECT_GT(r.damage, 1000.0);
}

TEST_F(ObfuscationTest, NoAttackersFails) {
  AttackContext ctx = scenario_.context({});
  ObfuscationOptions opt;
  opt.min_victims = 1;
  EXPECT_FALSE(obfuscation_attack(ctx, opt).success);
}

}  // namespace
}  // namespace scapegoat
