// Unit tests for the observability layer: metric primitives, the registry,
// ScopedInstrumentation install/restore semantics, trace JSONL round-trips
// and the snapshot exporters.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {
namespace {

TEST(Counter, FoldsConcurrentAddsExactly) {
  obs::Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kAddsPerThread);
}

TEST(Counter, AddWithDelta) {
  obs::Counter c;
  c.add(5);
  c.add(37);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetTracksValueAndMax) {
  obs::Gauge g;
  g.set(3);
  g.set(17);
  g.set(5);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max_value(), 17);
  g.record_max(100);
  EXPECT_EQ(g.value(), 5);  // record_max leaves the level alone
  EXPECT_EQ(g.max_value(), 100);
}

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 = [0,1), bucket b = [2^(b-1), 2^b).
  EXPECT_EQ(obs::Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(0.99), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1.0), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(1.5), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2.0), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3.99), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4.0), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024.0), 11u);
  // Far beyond the last edge still lands in the final bucket.
  EXPECT_EQ(obs::Histogram::bucket_of(1e300), obs::Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveAccumulatesAndClampsBadInput) {
  obs::Histogram h;
  h.observe(0.5);
  h.observe(3.0);
  h.observe(-7.0);                                  // clamps to 0
  h.observe(std::numeric_limits<double>::quiet_NaN());  // clamps to 0
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);  // 0.5 + 3.0 + 0 + 0, exact in 1/256 fp
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 3u);  // 0.5 and the two clamped observations
  EXPECT_EQ(buckets[2], 1u);  // 3.0 in [2, 4)
}

TEST(Histogram, QuantileUsesBucketEdgesClampedByMax) {
  obs::Histogram h;
  for (int i = 0; i < 99; ++i) h.observe(10.0);  // bucket [8, 16)
  h.observe(100.0);                               // bucket [64, 128)
  obs::HistogramSample s;
  s.count = h.count();
  s.sum = h.sum();
  s.max = h.max();
  s.buckets = h.buckets();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 16.0);   // p50 = upper edge of [8,16)
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);  // clamped by observed max
}

TEST(MetricsRegistry, SnapshotSortedAndStableAddresses) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("zzz.last");
  obs::Counter& b = reg.counter("aaa.first");
  a.add(1);
  b.add(2);
  EXPECT_EQ(&reg.counter("zzz.last"), &a);  // create-once, stable address
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aaa.first");
  EXPECT_EQ(snap.counters[1].name, "zzz.last");
  EXPECT_EQ(snap.counter_value("aaa.first"), 2u);
  EXPECT_EQ(snap.counter_value("missing"), 0u);
}

TEST(MetricsRegistry, ConcurrentCreateAndAdd) {
  obs::MetricsRegistry reg;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAdds = 5000;
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        reg.counter("shared.counter").add();
        reg.histogram("shared.hist").observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("shared.counter"), kThreads * kAdds);
  ASSERT_NE(snap.histogram("shared.hist"), nullptr);
  EXPECT_EQ(snap.histogram("shared.hist")->count, kThreads * kAdds);
}

TEST(ScopedInstrumentation, InstallsAndRestores) {
  EXPECT_FALSE(obs::metrics_enabled());
  obs::count("outside", 1);  // no-op: nothing installed
  {
    obs::MetricsRegistry outer;
    obs::ScopedInstrumentation inst(outer);
    EXPECT_TRUE(obs::metrics_enabled());
    obs::count("depth", 1);
    {
      obs::MetricsRegistry inner;
      obs::ScopedInstrumentation nested(inner);
      obs::count("depth", 10);
      EXPECT_EQ(inner.snapshot().counter_value("depth"), 10u);
    }
    obs::count("depth", 1);  // back to outer after nested scope ends
    EXPECT_EQ(outer.snapshot().counter_value("depth"), 2u);
  }
  EXPECT_FALSE(obs::metrics_enabled());
}

TEST(ScopedTimer, RecordsIntoHistogram) {
  obs::MetricsRegistry reg;
  obs::ScopedInstrumentation inst(reg);
  {
    obs::ScopedTimer t("timer.test_us");
  }
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.histogram("timer.test_us"), nullptr);
  EXPECT_EQ(snap.histogram("timer.test_us")->count, 1u);
}

TEST(ScopedTimer, NoOpWhenDisabled) {
  obs::ScopedTimer t("never.recorded_us");
  EXPECT_DOUBLE_EQ(t.stop(), 0.0);
}

TEST(Trace, JsonlRoundTrip) {
  std::ostringstream out;
  {
    obs::JsonlTraceSink sink(out);
    obs::TraceEvent e;
    e.name = "span \"quoted\"\nwith\tnasties\\";
    e.thread_id = 3;
    e.start_us = 1234;
    e.duration_us = 56;
    e.attrs.emplace_back("key", "value with \"quotes\" and \x01 control");
    e.attrs.emplace_back("n", "42");
    sink.write(e);
  }
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  const auto parsed =
      obs::parse_trace_line(std::string_view(line).substr(0, line.size() - 1));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "span \"quoted\"\nwith\tnasties\\");
  EXPECT_EQ(parsed->thread_id, 3);
  EXPECT_EQ(parsed->start_us, 1234u);
  EXPECT_EQ(parsed->duration_us, 56u);
  ASSERT_EQ(parsed->attrs.size(), 2u);
  EXPECT_EQ(parsed->attrs[0].first, "key");
  EXPECT_EQ(parsed->attrs[0].second, "value with \"quotes\" and \x01 control");
  EXPECT_EQ(parsed->attrs[1].second, "42");
}

TEST(Trace, ParseRejectsGarbage) {
  EXPECT_FALSE(obs::parse_trace_line("not json").has_value());
  EXPECT_FALSE(obs::parse_trace_line("{}").has_value());
  EXPECT_FALSE(obs::parse_trace_line("").has_value());
}

TEST(Trace, ScopedSpanWritesEvent) {
  std::ostringstream out;
  obs::MetricsRegistry reg;
  {
    obs::JsonlTraceSink sink(out);
    obs::ScopedInstrumentation inst(reg, &sink);
    obs::ScopedSpan span("unit.test.span");
    span.attr("answer", std::uint64_t{42});
  }
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const auto parsed = obs::parse_trace_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, "unit.test.span");
  ASSERT_EQ(parsed->attrs.size(), 1u);
  EXPECT_EQ(parsed->attrs[0].first, "answer");
  EXPECT_EQ(parsed->attrs[0].second, "42");
}

TEST(Trace, SpanInertWhenDisabled) {
  obs::ScopedSpan span("inert");
  EXPECT_FALSE(span.active());
  span.attr("dropped", "yes");  // must not crash
}

TEST(Exporters, AllThreeRenderTheSameSnapshot) {
  obs::MetricsRegistry reg;
  reg.counter("c.one").add(7);
  reg.gauge("g.level").set(3);
  reg.histogram("h.lat_us").observe(100.0);
  const auto snap = reg.snapshot();

  const std::string table = obs::to_table(snap);
  EXPECT_NE(table.find("c.one"), std::string::npos);
  EXPECT_NE(table.find("7"), std::string::npos);
  EXPECT_NE(table.find("g.level"), std::string::npos);
  EXPECT_NE(table.find("h.lat_us"), std::string::npos);

  const std::string json = obs::to_json(snap);
  EXPECT_NE(json.find("\"c.one\":7"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);

  const std::string csv = obs::to_csv(snap);
  EXPECT_NE(csv.find("counter,c.one"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g.level"), std::string::npos);
  EXPECT_NE(csv.find("histogram,h.lat_us"), std::string::npos);
}

TEST(Exporters, EmptySnapshot) {
  const obs::MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(obs::to_json(empty).empty());  // still valid JSON
  EXPECT_FALSE(obs::to_csv(empty).empty());   // still has a header
}

// Pool workers writing through the installed registry — the production
// write pattern (instrumented parallel_for bodies).
TEST(Obs, PoolWorkersRecordThroughHelpers) {
  obs::MetricsRegistry reg;
  obs::ScopedInstrumentation inst(reg);
  ThreadPool pool(4);
  pool.parallel_for(0, 1000, 10, [](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) obs::count("work.items");
  });
  EXPECT_EQ(reg.snapshot().counter_value("work.items"), 1000u);
}

}  // namespace
}  // namespace scapegoat
