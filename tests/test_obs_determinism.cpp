// Cross-thread-count determinism of the folded metrics (DESIGN.md §9).
//
// Runs the same small Fig. 7 workload with dedicated pools of 1, 2, 4 and 8
// workers under fresh registries and asserts that every algorithmic counter
// folds to the identical value. Counters under the "pool." prefix are
// scheduling-dependent (how many chunks ran inline vs dispatched) and are
// explicitly outside the contract, so they are stripped before comparing.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace scapegoat {
namespace {

std::map<std::string, std::uint64_t> algorithmic_counters(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> out;
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name.rfind("pool.", 0) == 0) continue;
    out[c.name] = c.value;
  }
  return out;
}

TEST(ObsDeterminism, CountersIdenticalAt1248Threads) {
  std::map<std::string, std::uint64_t> baseline;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    obs::MetricsRegistry registry;
    {
      obs::ScopedInstrumentation inst(registry);
      PresenceRatioOptions opt;
      opt.threads = threads;  // dedicated pool of exactly this size
      opt.topologies = 1;
      opt.trials_per_topology = 24;
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
    }
    const auto counters = algorithmic_counters(registry.snapshot());
    ASSERT_FALSE(counters.empty());
    EXPECT_GT(counters.at("core.fig7.trials"), 0u);
    EXPECT_GT(counters.at("lp.simplex.iterations"), 0u);
    if (threads == 1) {
      baseline = counters;
    } else {
      EXPECT_EQ(counters, baseline)
          << "algorithmic counters drifted at " << threads << " threads";
    }
  }
}

// Histogram counts (not timings — the durations differ, the event counts
// must not) also hold across thread counts.
TEST(ObsDeterminism, HistogramCountsIdenticalAcrossThreads) {
  std::map<std::string, std::uint64_t> baseline;
  for (std::size_t threads : {1u, 4u}) {
    obs::MetricsRegistry registry;
    {
      obs::ScopedInstrumentation inst(registry);
      PresenceRatioOptions opt;
      opt.threads = threads;
      opt.topologies = 1;
      opt.trials_per_topology = 16;
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
    }
    std::map<std::string, std::uint64_t> counts;
    for (const obs::HistogramSample& h : registry.snapshot().histograms) {
      if (h.name.rfind("pool.", 0) == 0) continue;
      counts[h.name] = h.count;
    }
    if (threads == 1) {
      baseline = counts;
      ASSERT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(counts, baseline);
    }
  }
}

}  // namespace
}  // namespace scapegoat
