// Determinism regression for the parallel experiment engine: the same
// experiment config run at 1, 2, and 8 worker threads must produce
// bitwise-identical per-trial estimates and aggregate stats. This is the
// seed-splitting contract of core/experiment (see DESIGN.md "Threading
// model"): every trial draws from Rng(derive_seed(base, trial_index)), so
// scheduling can never leak into results.

#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "util/thread_pool.hpp"

namespace scapegoat {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

void expect_same_presence_series(const PresenceRatioSeries& a,
                                 const PresenceRatioSeries& b,
                                 std::size_t threads) {
  ASSERT_EQ(a.bins.size(), b.bins.size());
  EXPECT_EQ(a.total_trials, b.total_trials) << threads << " threads";
  for (std::size_t i = 0; i < a.bins.size(); ++i) {
    EXPECT_EQ(a.bins[i].trials, b.bins[i].trials)
        << "bin " << i << " at " << threads << " threads";
    EXPECT_EQ(a.bins[i].successes, b.bins[i].successes)
        << "bin " << i << " at " << threads << " threads";
  }
}

TEST(ParallelDeterminism, PresenceRatioSeriesIdenticalAcrossThreadCounts) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 48;
  opt.seed = 1234;

  opt.threads = 1;
  const PresenceRatioSeries reference =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  EXPECT_GT(reference.total_trials, 0u);
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    expect_same_presence_series(
        run_presence_ratio_experiment(TopologyKind::kWireline, opt), reference,
        threads);
  }
}

TEST(ParallelDeterminism, GrainSizeDoesNotChangeResults) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 32;
  opt.seed = 5;
  opt.threads = 4;
  opt.grain = 8;
  const PresenceRatioSeries coarse =
      run_presence_ratio_experiment(TopologyKind::kWireline, opt);
  opt.grain = 1;
  expect_same_presence_series(
      run_presence_ratio_experiment(TopologyKind::kWireline, opt), coarse, 4);
}

TEST(ParallelDeterminism, SingleAttackerResultsIdenticalAcrossThreadCounts) {
  SingleAttackerOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology = 10;
  opt.seed = 99;

  opt.threads = 1;
  const SingleAttackerResult reference =
      run_single_attacker_experiment(TopologyKind::kWireline, opt);
  EXPECT_EQ(reference.trials, 10u);
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    const SingleAttackerResult run =
        run_single_attacker_experiment(TopologyKind::kWireline, opt);
    EXPECT_EQ(run.trials, reference.trials) << threads << " threads";
    EXPECT_EQ(run.max_damage_successes, reference.max_damage_successes)
        << threads << " threads";
    EXPECT_EQ(run.obfuscation_successes, reference.obfuscation_successes)
        << threads << " threads";
  }
}

TEST(ParallelDeterminism, DetectionSeriesIdenticalAcrossThreadCounts) {
  DetectionOptionsExperiment opt;
  opt.topologies = 1;
  opt.successful_attacks_per_cell = 3;
  opt.max_trials_per_cell = 96;
  opt.seed = 77;

  opt.threads = 1;
  const DetectionSeries reference =
      run_detection_experiment(TopologyKind::kWireline, opt);
  ASSERT_EQ(reference.cells.size(), 6u);
  EXPECT_GT(reference.clean_trials, 0u);
  for (std::size_t threads : kThreadCounts) {
    opt.threads = threads;
    const DetectionSeries run =
        run_detection_experiment(TopologyKind::kWireline, opt);
    ASSERT_EQ(run.cells.size(), reference.cells.size());
    EXPECT_EQ(run.clean_trials, reference.clean_trials);
    EXPECT_EQ(run.false_alarms, reference.false_alarms);
    for (std::size_t i = 0; i < run.cells.size(); ++i) {
      EXPECT_EQ(run.cells[i].strategy, reference.cells[i].strategy);
      EXPECT_EQ(run.cells[i].perfect_cut, reference.cells[i].perfect_cut);
      EXPECT_EQ(run.cells[i].attacks, reference.cells[i].attacks)
          << "cell " << i << " at " << threads << " threads";
      EXPECT_EQ(run.cells[i].detected, reference.cells[i].detected)
          << "cell " << i << " at " << threads << " threads";
    }
  }
}

// Per-trial estimates, not just aggregates: the estimator's x̂ = R⁺y solve
// (which internally uses the pool-parallel QR / pseudo-inverse kernels) must
// produce the same bits under any global thread count.
TEST(ParallelDeterminism, PerTrialEstimatesBitwiseIdentical) {
  auto build = [] {
    Rng rng(2024);
    return make_scenario(TopologyKind::kWireline, rng);
  };
  ThreadPool::set_global_threads(1);
  auto serial_sc = build();
  ASSERT_TRUE(serial_sc.has_value());
  const Vector y = serial_sc->clean_measurements();
  const Vector serial_estimate = serial_sc->estimator().estimate(y);

  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_global_threads(threads);
    auto sc = build();
    ASSERT_TRUE(sc.has_value());
    // Topology generation itself is RNG-driven and thread-independent.
    ASSERT_EQ(sc->graph().num_links(), serial_sc->graph().num_links());
    EXPECT_TRUE(approx_equal(sc->x_true(), serial_sc->x_true(), 0.0));
    EXPECT_TRUE(approx_equal(sc->estimator().estimate(y), serial_estimate, 0.0))
        << threads << " threads";
    EXPECT_TRUE(approx_equal(sc->estimator().pseudo_inverse(),
                             serial_sc->estimator().pseudo_inverse(), 0.0))
        << threads << " threads";
  }
  ThreadPool::set_global_threads(1);
}

}  // namespace
}  // namespace scapegoat
