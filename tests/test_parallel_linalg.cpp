// Property tests for the parallel linalg kernels: the pool-dispatched
// multiply / QR / pseudo-inverse paths must agree with the serial paths —
// bitwise, since chunk boundaries never reorder accumulation — and with a
// naive reference to 1e-12, across random, degenerate, and rank-deficient
// shapes.

#include <gtest/gtest.h>

#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace scapegoat {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-5.0, 5.0);
  return m;
}

// Textbook ijk multiply — the independent reference implementation.
Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(r, k) * b(k, c);
      out(r, c) = acc;
    }
  return out;
}

// Restores the global pool to 1 worker when a test exits, so test order
// doesn't leak thread counts between cases.
struct GlobalThreadsGuard {
  explicit GlobalThreadsGuard(std::size_t n) {
    ThreadPool::set_global_threads(n);
  }
  ~GlobalThreadsGuard() { ThreadPool::set_global_threads(1); }
};

TEST(ParallelMultiply, MatchesSerialBitwiseAndNaiveToTolerance) {
  GlobalThreadsGuard guard(8);
  Rng rng(42);
  // Shapes straddling the parallel-dispatch threshold, including tall/skinny
  // and short/fat.
  const std::size_t shapes[][3] = {{64, 64, 64},  {100, 80, 90}, {300, 20, 40},
                                   {20, 300, 15}, {7, 5, 3},     {128, 1, 128},
                                   {1, 256, 1}};
  for (const auto& s : shapes) {
    const Matrix a = random_matrix(s[0], s[1], rng);
    const Matrix b = random_matrix(s[1], s[2], rng);
    const Matrix parallel = a * b;
    const Matrix serial = multiply_serial(a, b);
    EXPECT_TRUE(approx_equal(parallel, serial, 0.0))
        << s[0] << "x" << s[1] << "x" << s[2] << " parallel != serial";
    EXPECT_TRUE(approx_equal(parallel, naive_multiply(a, b), 1e-12))
        << s[0] << "x" << s[1] << "x" << s[2] << " parallel != naive";
  }
}

TEST(ParallelMultiply, DegenerateShapes) {
  GlobalThreadsGuard guard(8);
  Rng rng(7);
  // 0×n, n×0, and 1×1 products stay well-defined on both paths.
  const Matrix empty_rows(0, 5);
  const Matrix b5 = random_matrix(5, 4, rng);
  EXPECT_EQ((empty_rows * b5).rows(), 0u);
  EXPECT_EQ((empty_rows * b5).cols(), 4u);

  const Matrix a5 = random_matrix(4, 5, rng);
  const Matrix empty_cols(5, 0);
  EXPECT_EQ((a5 * empty_cols).rows(), 4u);
  EXPECT_EQ((a5 * empty_cols).cols(), 0u);

  const Matrix one{{3.0}};
  EXPECT_DOUBLE_EQ((one * one)(0, 0), 9.0);
}

TEST(ParallelMultiply, SparseRowsSkipIdenticallyOnBothPaths) {
  GlobalThreadsGuard guard(8);
  Rng rng(11);
  Matrix a = random_matrix(96, 96, rng);
  // Zero entries exercise the av == 0 skip in the kernel on both paths.
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      if (rng.bernoulli(0.7)) a(r, c) = 0.0;
  const Matrix b = random_matrix(96, 96, rng);
  EXPECT_TRUE(approx_equal(a * b, multiply_serial(a, b), 0.0));
}

// Factor the same matrix under a 1-worker and an 8-worker global pool; the
// parallel trailing updates must not change a single bit.
void expect_qr_thread_invariant(const Matrix& a) {
  ThreadPool::set_global_threads(1);
  const QrDecomposition serial(a, QrDecomposition::Pivoting::kColumn);
  ThreadPool::set_global_threads(8);
  const QrDecomposition parallel(a, QrDecomposition::Pivoting::kColumn);
  EXPECT_TRUE(approx_equal(parallel.r(), serial.r(), 0.0));
  EXPECT_EQ(parallel.rank(), serial.rank());
}

TEST(ParallelQr, FactorizationIsThreadCountInvariant) {
  GlobalThreadsGuard guard(8);
  Rng rng(3);
  expect_qr_thread_invariant(random_matrix(300, 80, rng));  // tall/skinny
  expect_qr_thread_invariant(random_matrix(80, 300, rng));  // short/fat
  expect_qr_thread_invariant(random_matrix(1, 1, rng));
  expect_qr_thread_invariant(Matrix(0, 4));
  expect_qr_thread_invariant(Matrix(4, 0));
}

TEST(ParallelQr, RankDeficientMatrixAgreesAcrossThreadCounts) {
  GlobalThreadsGuard guard(8);
  Rng rng(13);
  // 200×60 with rank ≤ 20: columns are combinations of 20 generators.
  const Matrix gen = random_matrix(200, 20, rng);
  const Matrix mix = random_matrix(20, 60, rng);
  ThreadPool::set_global_threads(1);
  const Matrix serial_product = multiply_serial(gen, mix);
  const std::size_t serial_rank = matrix_rank(serial_product);
  ThreadPool::set_global_threads(8);
  const std::size_t parallel_rank = matrix_rank(gen * mix);
  EXPECT_EQ(parallel_rank, serial_rank);
  EXPECT_LE(parallel_rank, 20u);
}

TEST(ParallelQr, SolveAgreesWithSerialToTolerance) {
  GlobalThreadsGuard guard(8);
  Rng rng(21);
  const Matrix a = random_matrix(250, 60, rng);
  Vector b(250);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  ThreadPool::set_global_threads(1);
  const auto serial = least_squares(a, b, LeastSquaresMethod::kQr);
  ThreadPool::set_global_threads(8);
  const auto parallel = least_squares(a, b, LeastSquaresMethod::kQr);
  ASSERT_TRUE(serial.has_value());
  ASSERT_TRUE(parallel.has_value());
  EXPECT_TRUE(approx_equal(*parallel, *serial, 0.0));
  // And the solution actually solves the normal equations to tolerance.
  const Vector r = residual(a, *parallel, b);
  const Vector atr = a.transposed() * r;
  EXPECT_LT(atr.norm_inf(), 1e-9);
}

TEST(ParallelPseudoInverse, MatchesSerialBitwise) {
  GlobalThreadsGuard guard(8);
  Rng rng(31);
  const Matrix a = random_matrix(180, 50, rng);
  ThreadPool::set_global_threads(1);
  const Matrix serial = pseudo_inverse(a);
  ThreadPool::set_global_threads(8);
  const Matrix parallel = pseudo_inverse(a);
  EXPECT_TRUE(approx_equal(parallel, serial, 0.0));
  // G a ≈ I to tolerance (left inverse on full column rank).
  const Matrix ga = parallel * a;
  EXPECT_TRUE(approx_equal(ga, Matrix::identity(50), 1e-9));
}

TEST(ParallelLinalg, RandomizedSweepAgainstNaiveReference) {
  GlobalThreadsGuard guard(8);
  Rng rng(77);
  for (int iter = 0; iter < 12; ++iter) {
    const std::size_t m = 1 + rng.index(120);
    const std::size_t k = 1 + rng.index(120);
    const std::size_t n = 1 + rng.index(120);
    const Matrix a = random_matrix(m, k, rng);
    const Matrix b = random_matrix(k, n, rng);
    EXPECT_TRUE(approx_equal(a * b, naive_multiply(a, b), 1e-12))
        << m << "x" << k << "x" << n;
  }
}

}  // namespace
}  // namespace scapegoat
