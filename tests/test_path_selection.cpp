// Tests for greedy rank-augmenting measurement-path selection.

#include "tomography/path_selection.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "linalg/qr.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

std::vector<NodeId> all_nodes(const Graph& g) {
  std::vector<NodeId> v(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) v[i] = i;
  return v;
}

TEST(PathSelection, AllMonitorsOnCompleteGraphIsIdentifiable) {
  Graph g = complete(6);
  Rng rng(1);
  auto res = select_paths(g, all_nodes(g), PathSelectionOptions{}, rng);
  EXPECT_TRUE(res.identifiable);
  EXPECT_EQ(res.rank, g.num_links());
  const Matrix r = routing_matrix(g, res.paths);
  EXPECT_TRUE(is_identifiable(r));
}

TEST(PathSelection, GridWithAllMonitors) {
  Graph g = grid(4, 4);
  Rng rng(2);
  auto res = select_paths(g, all_nodes(g), PathSelectionOptions{}, rng);
  EXPECT_TRUE(res.identifiable);
  EXPECT_EQ(res.rank, g.num_links());
}

TEST(PathSelection, TwoMonitorsOnChainAreInsufficient) {
  // Chain 0-1-2-3 with monitors {0, 3}: only one path, rank 1 < 3.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  Rng rng(3);
  auto res = select_paths(g, {0, 3}, PathSelectionOptions{}, rng);
  EXPECT_FALSE(res.identifiable);
  EXPECT_EQ(res.rank, 1u);
}

TEST(PathSelection, RedundantPathsMakeRTall) {
  Graph g = complete(5);
  Rng rng(4);
  PathSelectionOptions opt;
  opt.redundant_paths = 6;
  auto res = select_paths(g, all_nodes(g), opt, rng);
  ASSERT_TRUE(res.identifiable);
  EXPECT_GE(res.paths.size(), g.num_links() + 4);  // rank + most extras
}

TEST(PathSelection, NoDuplicateLinkSets) {
  Graph g = complete(5);
  Rng rng(5);
  PathSelectionOptions opt;
  opt.redundant_paths = 8;
  auto res = select_paths(g, all_nodes(g), opt, rng);
  std::set<std::vector<LinkId>> seen;
  for (Path p : res.paths) {
    std::sort(p.links.begin(), p.links.end());
    EXPECT_TRUE(seen.insert(p.links).second);
  }
}

TEST(PathSelection, AllPathsAreValidMonitorPairs) {
  Graph g = grid(3, 3);
  Rng rng(6);
  std::vector<NodeId> monitors{0, 2, 4, 6, 8};
  auto res = select_paths(g, monitors, PathSelectionOptions{}, rng);
  const std::set<NodeId> mset(monitors.begin(), monitors.end());
  for (const Path& p : res.paths) {
    EXPECT_TRUE(is_valid_simple_path(g, p));
    EXPECT_TRUE(mset.contains(p.source()));
    EXPECT_TRUE(mset.contains(p.destination()));
    EXPECT_NE(p.source(), p.destination());
  }
}

TEST(PathSelection, RankMatchesRoutingMatrixRank) {
  Graph g = grid(3, 4);
  Rng rng(7);
  std::vector<NodeId> monitors{0, 3, 8, 11};
  auto res = select_paths(g, monitors, PathSelectionOptions{}, rng);
  const Matrix r = routing_matrix(g, res.paths);
  EXPECT_EQ(res.rank, matrix_rank(r));
}

}  // namespace
}  // namespace scapegoat
