// Tests for shortest paths and simple-path enumeration / sampling.

#include "graph/paths.hpp"

#include <gtest/gtest.h>

#include <set>

#include "graph/shortest_path.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

TEST(ShortestPath, FindsGeodesic) {
  Graph g = ring(6);
  auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 3u);
  EXPECT_TRUE(is_valid_simple_path(g, *p));
  EXPECT_EQ(p->source(), 0u);
  EXPECT_EQ(p->destination(), 3u);
}

TEST(ShortestPath, NulloptForSameNodeOrDisconnected) {
  Graph g(3);
  g.add_link(0, 1);
  EXPECT_FALSE(shortest_path(g, 0, 0).has_value());
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(ShortestPathAvoiding, RespectsForbiddenNodes) {
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 3);
  g.add_link(3, 4);
  g.add_link(4, 2);
  auto direct = shortest_path(g, 0, 2);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->length(), 2u);
  auto detour = shortest_path_avoiding(g, 0, 2, {1});
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(detour->length(), 3u);
  EXPECT_FALSE(detour->contains_node(1));
  EXPECT_FALSE(shortest_path_avoiding(g, 0, 2, {1, 4}).has_value());
}

TEST(Dijkstra, PrefersLowWeightDetour) {
  // Triangle: direct link heavy, two-hop light.
  Graph g(3);
  LinkId direct = *g.add_link(0, 2);
  LinkId a = *g.add_link(0, 1);
  LinkId b = *g.add_link(1, 2);
  std::vector<double> w(3, 0.0);
  w[direct] = 10.0;
  w[a] = 1.0;
  w[b] = 1.0;
  auto p = dijkstra(g, 0, 2, w);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 2u);
  EXPECT_TRUE(p->contains_node(1));

  // Flip the weights: the direct hop wins.
  w[direct] = 0.5;
  p = dijkstra(g, 0, 2, w);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 1u);
}

TEST(DijkstraAvoiding, BansNodesAndLinks) {
  // Triangle 0-1-2 plus direct 0-2.
  Graph g(3);
  LinkId direct = *g.add_link(0, 2);
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<double> w(3, 1.0);

  std::vector<bool> no_nodes(3, false), no_links(3, false);
  auto p = dijkstra_avoiding(g, 0, 2, w, no_nodes, no_links);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 1u);

  no_links[direct] = true;
  p = dijkstra_avoiding(g, 0, 2, w, no_nodes, no_links);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 2u);
  EXPECT_TRUE(p->contains_node(1));

  std::vector<bool> ban_mid(3, false);
  ban_mid[1] = true;
  p = dijkstra_avoiding(g, 0, 2, w, ban_mid, no_links);
  EXPECT_FALSE(p.has_value());  // both routes blocked

  // Banned endpoint: no path.
  std::vector<bool> ban_src(3, false);
  ban_src[0] = true;
  EXPECT_FALSE(dijkstra_avoiding(g, 0, 2, w, ban_src, {}).has_value());
}

TEST(DijkstraAvoiding, EmptyMasksEqualPlainDijkstra) {
  Rng rng(881);
  Graph g = erdos_renyi(12, 0.3, rng);
  std::vector<double> w(g.num_links());
  for (auto& wi : w) wi = rng.uniform(0.1, 2.0);
  auto a = dijkstra(g, 0, 11, w);
  auto b = dijkstra_avoiding(g, 0, 11, w, {}, {});
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a) {
    EXPECT_EQ(a->nodes, b->nodes);
    EXPECT_EQ(a->links, b->links);
  }
}

TEST(EnumerateSimplePaths, CompleteGraphK4) {
  Graph g = complete(4);
  // 0→3 simple paths in K4: direct (1), via one node (2), via two (2) = 5.
  auto paths = enumerate_simple_paths(g, 0, 3);
  EXPECT_EQ(paths.size(), 5u);
  std::set<std::vector<NodeId>> unique;
  for (const Path& p : paths) {
    EXPECT_TRUE(is_valid_simple_path(g, p));
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.destination(), 3u);
    unique.insert(p.nodes);
  }
  EXPECT_EQ(unique.size(), paths.size());
}

TEST(EnumerateSimplePaths, LengthCapFilters) {
  Graph g = complete(4);
  PathEnumerationOptions opt;
  opt.max_length = 1;
  auto paths = enumerate_simple_paths(g, 0, 3, opt);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].length(), 1u);
}

TEST(EnumerateSimplePaths, MaxPathsCapStopsEarly) {
  Graph g = complete(6);
  PathEnumerationOptions opt;
  opt.max_paths = 3;
  auto paths = enumerate_simple_paths(g, 0, 5, opt);
  EXPECT_EQ(paths.size(), 3u);
}

TEST(EnumerateSimplePaths, NoPathAcrossComponents) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_TRUE(enumerate_simple_paths(g, 0, 3).empty());
}

TEST(SampleSimplePath, ValidAndWithinCap) {
  Rng rng(99);
  Graph g = grid(4, 4);
  for (int i = 0; i < 50; ++i) {
    Path p = sample_simple_path(g, 0, 15, 10, rng);
    ASSERT_FALSE(p.empty());
    EXPECT_TRUE(is_valid_simple_path(g, p));
    EXPECT_LE(p.length(), 10u);
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.destination(), 15u);
  }
}

TEST(SampleSimplePath, EmptyWhenCapTooTight) {
  Graph g = ring(8);  // 0 to 4 needs ≥ 4 hops
  Rng rng(1);
  Path p = sample_simple_path(g, 0, 4, 3, rng);
  EXPECT_TRUE(p.empty());
}

TEST(SampleSimplePath, ProducesPathDiversity) {
  // Randomized DFS should find more than one route in a well-connected graph.
  Graph g = complete(5);
  Rng rng(7);
  std::set<std::vector<NodeId>> seen;
  for (int i = 0; i < 60; ++i)
    seen.insert(sample_simple_path(g, 0, 4, 4, rng).nodes);
  EXPECT_GT(seen.size(), 3u);
}

}  // namespace
}  // namespace scapegoat
