// Differential property suite for the attack layer: Theorem 1's perfect-cut
// condition computed literally from the graph vs the attack-LP feasibility
// verdict, with the Theorem 3 consistency corollary (a consistent
// chosen-victim attack must pass the Eq. 23 detector).

#include <gtest/gtest.h>

#include "prop_gtest.hpp"
#include "graph/graph.hpp"
#include "graph/paths.hpp"
#include "testkit/oracles.hpp"

namespace scapegoat {
namespace {

TEST(PropAttack, FeasibilityMatchesCutCondition) {
  SCAPEGOAT_RUN_PROPERTY("attack_feasibility_matches_cut_condition");
}

// ---- oracle self-check: ref_perfect_cut on a hand-built path set ----------

TEST(AttackOracle, PerfectCutOnHandBuiltPaths) {
  // Path line graph 0 -1- 1 -2- 2: one path over links {l01, l12}.
  Graph g(3);
  const LinkId l01 = *g.add_link(0, 1);
  const LinkId l12 = *g.add_link(1, 2);

  Path p;
  p.nodes = {0, 1, 2};
  p.links = {l01, l12};
  const std::vector<Path> paths = {p};

  // Victim l01, attacker node 1: the path visits node 1 → perfect cut.
  EXPECT_TRUE(testkit::ref_perfect_cut(paths, {1}, {l01}));
  // Attacker node 2 also lies on the path → still a perfect cut.
  EXPECT_TRUE(testkit::ref_perfect_cut(paths, {2}, {l01}));
  // No attackers: the path crosses the victim unobserved → no cut.
  EXPECT_FALSE(testkit::ref_perfect_cut(paths, {}, {l01}));
  // Victim not on any path: vacuously a perfect cut.
  Path q;
  q.nodes = {0, 1};
  q.links = {l01};
  EXPECT_TRUE(testkit::ref_perfect_cut({q}, {}, {l12}));
}

}  // namespace
}  // namespace scapegoat
