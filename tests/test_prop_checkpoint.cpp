// Property suite for crash-safe checkpointing: a generated presence-ratio
// experiment interrupted after a prefix of trials and resumed from its
// journal must fold to exactly the uninterrupted result (DESIGN.md §9's
// resume-equivalence contract, here exercised on generated configs instead
// of the fixed ones in test_checkpoint.cpp).

#include <gtest/gtest.h>

#include "prop_gtest.hpp"

namespace scapegoat {
namespace {

TEST(PropCheckpoint, ResumeEquivalence) {
  SCAPEGOAT_RUN_PROPERTY("checkpoint_resume_equivalence");
}

}  // namespace
}  // namespace scapegoat
