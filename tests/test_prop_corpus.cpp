// Corpus replay: every checked-in tests/corpus/*.seed file names a registry
// property and a Source seed that once produced a failure. The suite replays
// each seed (and, when present, its shrunk counterexample tape) and expects
// the property to PASS — checked-in seeds are fixed regressions, so a red
// run here means an old bug came back.
//
// The corpus directory is baked in at compile time (SCAPEGOAT_CORPUS_DIR)
// so the suite is independent of the ctest working directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "testkit/properties.hpp"
#include "testkit/runner.hpp"
#include "testkit/source.hpp"

namespace scapegoat::testkit {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  std::vector<fs::path> files;
  const fs::path dir(SCAPEGOAT_CORPUS_DIR);
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".seed") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(PropCorpus, CorpusIsCheckedIn) {
  // The issue requires seeded regressions (rank-deficient routing matrices,
  // degenerate simplex bases, ...): an empty corpus is a packaging bug.
  EXPECT_GE(corpus_files().size(), 3u) << "expected regression seeds under "
                                       << SCAPEGOAT_CORPUS_DIR;
}

TEST(PropCorpus, EverySeedFileParsesAndNamesARegisteredProperty) {
  for (const fs::path& path : corpus_files()) {
    const auto sf = load_seed_file(path.string());
    ASSERT_TRUE(sf.has_value()) << "unparseable seed file: " << path;
    EXPECT_EQ(property_registry().count(sf->property), 1u)
        << path << " names unknown property '" << sf->property << "'";
  }
}

TEST(PropCorpus, EverySeedReplaysClean) {
  for (const fs::path& path : corpus_files()) {
    const auto sf = load_seed_file(path.string());
    ASSERT_TRUE(sf.has_value()) << path;
    const auto it = property_registry().find(sf->property);
    ASSERT_NE(it, property_registry().end()) << path;

    // Replay the exact recorded case: one iteration, Source seeded directly
    // with the journaled value (the SCAPEGOAT_PROP_SEED code path).
    PropertyConfig cfg;
    cfg.replay_seed = sf->seed;
    cfg.corpus_out_dir = ::testing::TempDir();
    const PropertyOutcome out =
        check_property(sf->property, it->second.property, cfg);
    EXPECT_TRUE(out.passed) << path << "\n" << out.report();
  }
}

TEST(PropCorpus, EveryShrunkTapeReplaysClean) {
  for (const fs::path& path : corpus_files()) {
    const auto sf = load_seed_file(path.string());
    ASSERT_TRUE(sf.has_value()) << path;
    if (sf->tape.empty()) continue;
    const auto it = property_registry().find(sf->property);
    ASSERT_NE(it, property_registry().end()) << path;

    Source replay(sf->tape);
    EXPECT_TRUE(it->second.property(replay))
        << path << ": shrunk counterexample tape fails again";
  }
}

}  // namespace
}  // namespace scapegoat::testkit
