// Differential property suite for the detector: detect_scapegoating's
// residual vs the literal Eq. 23 sum Σ|y − Rx̂|, plus a hand-computed
// residual check keeping the reference honest.

#include <gtest/gtest.h>

#include "prop_gtest.hpp"
#include "linalg/matrix.hpp"
#include "testkit/oracles.hpp"

namespace scapegoat {
namespace {

TEST(PropDetect, ResidualMatchesEq23) {
  SCAPEGOAT_RUN_PROPERTY("detector_residual_matches_eq23");
}

TEST(DetectOracle, Eq23ResidualByHand) {
  // R = [1 1; 0 1], x̂ = (2, 3), y = (6, 2):
  // |6 - 5| + |2 - 3| = 2.
  Matrix r(2, 2);
  r(0, 0) = 1.0;
  r(0, 1) = 1.0;
  r(1, 1) = 1.0;
  const Vector x_hat{2.0, 3.0};
  const Vector y{6.0, 2.0};
  EXPECT_NEAR(testkit::ref_eq23_residual(r, x_hat, y), 2.0, 1e-12);
}

TEST(DetectOracle, Eq23ZeroResidualForConsistentMeasurements) {
  Matrix r(2, 3);
  r(0, 0) = 1.0;
  r(0, 2) = 1.0;
  r(1, 1) = 1.0;
  const Vector x_hat{10.0, 20.0, 30.0};
  const Vector y{40.0, 20.0};  // exactly R·x̂
  EXPECT_NEAR(testkit::ref_eq23_residual(r, x_hat, y), 0.0, 1e-12);
}

}  // namespace
}  // namespace scapegoat
