// Differential property suite for linalg: QR least-squares vs the textbook
// normal-equations reference, pseudo-inverse vs the Moore–Penrose axioms,
// and rank detection vs constructed rank. Oracle self-checks keep the
// references honest on hand-computable inputs.

#include <gtest/gtest.h>

#include "prop_gtest.hpp"
#include "linalg/matrix.hpp"
#include "testkit/oracles.hpp"

namespace scapegoat {
namespace {

TEST(PropLinalg, QrMatchesNormalEquations) {
  SCAPEGOAT_RUN_PROPERTY("linalg_qr_matches_normal_equations");
}

TEST(PropLinalg, PinvSatisfiesMoorePenrose) {
  SCAPEGOAT_RUN_PROPERTY("linalg_pinv_satisfies_moore_penrose");
}

TEST(PropLinalg, RankDetectsDeficiency) {
  SCAPEGOAT_RUN_PROPERTY("linalg_rank_detects_deficiency");
}

TEST(PropLinalg, SparseMatchesDenseLeastSquares) {
  SCAPEGOAT_RUN_PROPERTY("linalg_sparse_matches_dense_least_squares");
}

TEST(PropLinalg, SparseRowAppendMatchesRebuild) {
  SCAPEGOAT_RUN_PROPERTY("linalg_sparse_row_append_matches_rebuild");
}

// ---- oracle self-checks ---------------------------------------------------

TEST(LinalgOracle, NormalEquationsSolveExactSquareSystem) {
  // [2 0; 0 4] x = [2; 8]  →  x = (1, 2).
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  Vector b{2.0, 8.0};
  const std::vector<double> x = testkit::ref_normal_equations(a, b);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinalgOracle, NormalEquationsRefuseRankDeficiency) {
  // Second column is a multiple of the first: AᵀA singular.
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;
  }
  Vector b{1.0, 1.0, 1.0};
  EXPECT_TRUE(testkit::ref_normal_equations(a, b).empty());
}

TEST(LinalgOracle, MoorePenroseAcceptsTrueInverse) {
  // For invertible A the pseudo-inverse is the inverse: A = diag(2, 4),
  // G = diag(0.5, 0.25) satisfies all four axioms.
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  Matrix g(2, 2);
  g(0, 0) = 0.5;
  g(1, 1) = 0.25;
  EXPECT_TRUE(testkit::check_moore_penrose(a, g));
}

TEST(LinalgOracle, MoorePenroseRejectsWrongCandidate) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  Matrix g(2, 2);
  g(0, 0) = 1.0;  // not the inverse: AGA = diag(4, 4) != A
  g(1, 1) = 0.25;
  EXPECT_FALSE(testkit::check_moore_penrose(a, g));
}

}  // namespace
}  // namespace scapegoat
