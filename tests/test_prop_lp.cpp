// Differential property suite: two-phase simplex vs the brute-force
// vertex-enumeration reference LP (testkit/oracles.hpp), plus direct sanity
// checks that the oracle itself solves known models correctly — a wrong
// oracle would make the differential test vacuous.

#include <gtest/gtest.h>

#include "prop_gtest.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "testkit/oracles.hpp"

namespace scapegoat {
namespace {

using testkit::ReferenceLpResult;
using testkit::solve_lp_by_vertex_enumeration;

TEST(PropLp, SimplexMatchesVertexEnumeration) {
  SCAPEGOAT_RUN_PROPERTY("lp_simplex_matches_reference");
}

TEST(PropLp, RevisedSimplexMatchesTableau) {
  SCAPEGOAT_RUN_PROPERTY("lp_revised_simplex_matches_tableau");
}

// ---- oracle self-checks on hand-computable models -------------------------

TEST(LpOracle, SolvesKnownMaximization) {
  // max x + y  s.t.  x + y <= 1.5,  x,y in [0, 1]  →  optimum 1.5.
  lp::Model m(lp::Sense::kMaximize);
  const std::size_t x = m.add_variable(0.0, 1.0, 1.0, "x");
  const std::size_t y = m.add_variable(0.0, 1.0, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::RowType::kLessEqual, 1.5);

  const ReferenceLpResult ref = solve_lp_by_vertex_enumeration(m);
  ASSERT_TRUE(ref.feasible);
  EXPECT_NEAR(ref.objective, 1.5, 1e-9);
  EXPECT_GT(ref.vertices_checked, 0u);

  const lp::Solution sol = lp::solve(m);
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, ref.objective, 1e-7);
}

TEST(LpOracle, DetectsInfeasibleBox) {
  // x in [0, 1] but x >= 2 is required: infeasible for both solvers.
  lp::Model m(lp::Sense::kMaximize);
  const std::size_t x = m.add_variable(0.0, 1.0, 1.0, "x");
  m.add_constraint({{x, 1.0}}, lp::RowType::kGreaterEqual, 2.0);

  const ReferenceLpResult ref = solve_lp_by_vertex_enumeration(m);
  EXPECT_FALSE(ref.feasible);
  const lp::Solution sol = lp::solve(m);
  EXPECT_EQ(sol.status, lp::SolveStatus::kInfeasible);
}

TEST(LpOracle, HandlesEqualityConstraints) {
  // min x + 2y  s.t.  x + y = 2,  x,y in [0, 3]  →  x=2, y=0, objective 2.
  lp::Model m(lp::Sense::kMinimize);
  const std::size_t x = m.add_variable(0.0, 3.0, 1.0, "x");
  const std::size_t y = m.add_variable(0.0, 3.0, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, lp::RowType::kEqual, 2.0);

  const ReferenceLpResult ref = solve_lp_by_vertex_enumeration(m);
  ASSERT_TRUE(ref.feasible);
  EXPECT_NEAR(ref.objective, 2.0, 1e-9);
  ASSERT_EQ(ref.x.size(), 2u);
  EXPECT_LE(m.max_violation(ref.x), 1e-7);
}

TEST(LpOracle, UnconstrainedBoxOptimumIsCorner) {
  // No rows at all: the optimum of max 3x - y over x in [-1, 2], y in [0, 4]
  // is the corner (2, 0) with objective 6.
  lp::Model m(lp::Sense::kMaximize);
  m.add_variable(-1.0, 2.0, 3.0, "x");
  m.add_variable(0.0, 4.0, -1.0, "y");

  const ReferenceLpResult ref = solve_lp_by_vertex_enumeration(m);
  ASSERT_TRUE(ref.feasible);
  EXPECT_NEAR(ref.objective, 6.0, 1e-9);
  ASSERT_EQ(ref.x.size(), 2u);
  EXPECT_NEAR(ref.x[0], 2.0, 1e-9);
  EXPECT_NEAR(ref.x[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace scapegoat
