// Differential property suite for the estimator family: equality-mode
// sparse recovery vs least squares on identifiable systems, the multicast
// MLE vs its textbook/brute-force oracles (the registry properties the
// tests/corpus seeds replay), plus hand-computed instances keeping the LP
// encoding and the oracles themselves honest.

#include <gtest/gtest.h>

#include <cmath>

#include "prop_gtest.hpp"
#include "graph/graph.hpp"
#include "testkit/oracles.hpp"
#include "tomography/multicast_mle.hpp"
#include "tomography/sparse_recovery.hpp"

namespace scapegoat {
namespace {

TEST(PropTomography, SparseRecoveryMatchesLeastSquares) {
  SCAPEGOAT_RUN_PROPERTY("tomography_sparse_matches_least_squares");
}

TEST(PropTomography, MulticastMleMatchesClosedForm) {
  SCAPEGOAT_RUN_PROPERTY("tomography_mle_matches_closed_form");
}

TEST(MulticastMleOracle, TwoLeafClosedFormByHand) {
  // γ₁ = 0.8, γ₂ = 0.9, γ_or = 0.95:
  //   Â = 0.8·0.9 / (0.8 + 0.9 − 0.95) = 0.72 / 0.75 = 0.96,
  //   α̂₁ = 0.8 / 0.96 = 5/6,  α̂₂ = 0.9 / 0.96 = 0.9375.
  const auto ref = testkit::ref_two_leaf_mle(0.8, 0.9, 0.95);
  ASSERT_EQ(ref.size(), 3u);
  EXPECT_NEAR(ref[0], 0.96, 1e-12);
  EXPECT_NEAR(ref[1], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(ref[2], 0.9375, 1e-12);
}

TEST(MulticastMleOracle, OutcomeLoglikByHand) {
  // Root with two direct leaf children, both links at rate 1/2: every one
  // of the four leaf-outcome masks has probability 1/4, so a flat histogram
  // of 4 probes scores 4·log(1/4).
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(0, 2);
  const auto tree = build_multicast_tree(g, 0, {1, 2});
  ASSERT_TRUE(tree.ok()) << tree.error_message();
  const Vector rates{1.0, 0.5, 0.5};
  const double ll =
      testkit::ref_multicast_outcome_loglik(*tree, rates, {1, 1, 1, 1}, 4);
  EXPECT_NEAR(ll, 4.0 * std::log(0.25), 1e-12);
  // An outcome the model forbids (rate-1 link, leaf reported lost) is −inf.
  const Vector certain{1.0, 1.0, 0.5};
  EXPECT_TRUE(std::isinf(
      testkit::ref_multicast_outcome_loglik(*tree, certain, {1, 1, 1, 1}, 4)));
}

TEST(MulticastMleOracle, GridSearchDominatesAnyGridPoint) {
  Graph g(3);
  g.add_link(0, 1);
  g.add_link(0, 2);
  const auto tree = build_multicast_tree(g, 0, {1, 2});
  ASSERT_TRUE(tree.ok());
  const std::vector<std::size_t> counts{2, 3, 3, 8};
  const double best = testkit::ref_multicast_mle_grid(*tree, counts, 16);
  for (int i = 1; i <= 9; ++i)
    for (int j = 1; j <= 9; ++j) {
      const Vector rates{1.0, i / 9.0, j / 9.0};
      EXPECT_GE(best + 1e-12, testkit::ref_multicast_outcome_loglik(
                                  *tree, rates, counts, 16));
    }
}

TEST(SparseRecoveryOracle, L1RecoveryByHand) {
  // Two links, three measurements: y fixes x = (5, 0) uniquely.
  //   path 0 = {0}, path 1 = {1}, path 2 = {0, 1}
  Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<Path> paths(3);
  paths[0].links = {0};
  paths[1].links = {1};
  paths[2].links = {0, 1};
  const SparseRecoveryEstimator est(g, paths);
  const auto rec = est.recover(Vector{5.0, 0.0, 5.0});
  ASSERT_TRUE(rec.ok()) << rec.error_message();
  EXPECT_NEAR(rec->x[0], 5.0, 1e-9);
  EXPECT_NEAR(rec->x[1], 0.0, 1e-9);
  EXPECT_NEAR(rec->objective, 5.0, 1e-9);
  ASSERT_EQ(rec->support.size(), 1u);
  EXPECT_EQ(rec->support[0], LinkId{0});
}

TEST(SparseRecoveryOracle, L1PrefersTheSparsestExplanation) {
  // One measurement over two links, y = 7: the ℓ1-minimal nonnegative
  // explanation puts all delay on a single link, not 3.5 on each — any
  // split has the same ‖x‖₁ but the LP vertex solution is 1-sparse.
  Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<Path> paths(1);
  paths[0].links = {0, 1};
  const SparseRecoveryEstimator est(g, paths);
  const auto rec = est.recover(Vector{7.0});
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(rec->objective, 7.0, 1e-9);
  EXPECT_EQ(rec->support.size(), 1u);
  EXPECT_NEAR(rec->x[0] + rec->x[1], 7.0, 1e-9);
}

}  // namespace
}  // namespace scapegoat
