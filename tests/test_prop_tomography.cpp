// Differential property suite for the estimator family: equality-mode
// sparse recovery vs least squares on identifiable systems (the registry
// property the tests/corpus seeds replay), plus hand-computed ℓ1 recovery
// instances keeping the LP encoding honest.

#include <gtest/gtest.h>

#include "prop_gtest.hpp"
#include "graph/graph.hpp"
#include "tomography/sparse_recovery.hpp"

namespace scapegoat {
namespace {

TEST(PropTomography, SparseRecoveryMatchesLeastSquares) {
  SCAPEGOAT_RUN_PROPERTY("tomography_sparse_matches_least_squares");
}

TEST(SparseRecoveryOracle, L1RecoveryByHand) {
  // Two links, three measurements: y fixes x = (5, 0) uniquely.
  //   path 0 = {0}, path 1 = {1}, path 2 = {0, 1}
  Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<Path> paths(3);
  paths[0].links = {0};
  paths[1].links = {1};
  paths[2].links = {0, 1};
  const SparseRecoveryEstimator est(g, paths);
  const auto rec = est.recover(Vector{5.0, 0.0, 5.0});
  ASSERT_TRUE(rec.ok()) << rec.error_message();
  EXPECT_NEAR(rec->x[0], 5.0, 1e-9);
  EXPECT_NEAR(rec->x[1], 0.0, 1e-9);
  EXPECT_NEAR(rec->objective, 5.0, 1e-9);
  ASSERT_EQ(rec->support.size(), 1u);
  EXPECT_EQ(rec->support[0], LinkId{0});
}

TEST(SparseRecoveryOracle, L1PrefersTheSparsestExplanation) {
  // One measurement over two links, y = 7: the ℓ1-minimal nonnegative
  // explanation puts all delay on a single link, not 3.5 on each — any
  // split has the same ‖x‖₁ but the LP vertex solution is 1-sparse.
  Graph g;
  g.add_node();
  g.add_node();
  g.add_node();
  g.add_link(0, 1);
  g.add_link(1, 2);
  std::vector<Path> paths(1);
  paths[0].links = {0, 1};
  const SparseRecoveryEstimator est(g, paths);
  const auto rec = est.recover(Vector{7.0});
  ASSERT_TRUE(rec.ok());
  EXPECT_NEAR(rec->objective, 7.0, 1e-9);
  EXPECT_EQ(rec->support.size(), 1u);
  EXPECT_NEAR(rec->x[0] + rec->x[1], 7.0, 1e-9);
}

}  // namespace
}  // namespace scapegoat
