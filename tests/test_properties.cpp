// Parameterized property suites over random instances — the paper's
// theorems as executable invariants.
//
// Instances come from the testkit generators (src/testkit/gen.hpp): every
// draw flows through a choice-tape Source, so any failing parameterization
// can be re-generated and shrunk by the property runner if it is ever
// promoted into the registry (testkit/properties.hpp, which hosts the
// generative sibling of the Theorem 1 check below).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "attack/attack_lp.hpp"
#include "attack/chosen_victim.hpp"
#include "attack/cut.hpp"
#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "testkit/gen.hpp"

namespace scapegoat {
namespace {

// ---- Theorem 1: perfect cut ⇒ chosen-victim feasibility -------------------
//
// Construction: ER graph, pick a link whose endpoints are non-monitors,
// attackers = the endpoints' full outside neighborhood (guaranteed perfect
// cut). The attack must be feasible — in both manipulation modes.

class PerfectCutFeasibility : public ::testing::TestWithParam<int> {};

TEST_P(PerfectCutFeasibility, Theorem1Holds) {
  testkit::Source src(static_cast<std::uint64_t>(1000 + GetParam()));
  auto sc = testkit::gen_er_scenario(src, 24, 0.22);
  ASSERT_TRUE(sc.has_value());
  const auto& paths = sc->estimator().paths();

  for (LinkId victim = 0; victim < sc->graph().num_links(); ++victim) {
    const Link& l = sc->graph().link(victim);
    if (sc->is_monitor(l.u) || sc->is_monitor(l.v)) continue;
    std::vector<NodeId> attackers;
    for (const Adjacent& a : sc->graph().neighbors(l.u))
      if (a.neighbor != l.v) attackers.push_back(a.neighbor);
    for (const Adjacent& a : sc->graph().neighbors(l.v))
      if (a.neighbor != l.u &&
          std::find(attackers.begin(), attackers.end(), a.neighbor) ==
              attackers.end())
        attackers.push_back(a.neighbor);
    if (attackers.empty()) continue;
    ASSERT_TRUE(is_perfect_cut(paths, attackers, {victim}));

    AttackContext ctx = sc->context(attackers);
    const AttackResult consistent =
        chosen_victim_attack(ctx, {victim}, ManipulationMode::kConsistent);
    EXPECT_TRUE(consistent.success) << "victim " << victim;
    if (consistent.success) {
      // Theorem 3: consistent + perfect cut ⇒ invisible to Eq. 23.
      EXPECT_LT(detect_scapegoating(sc->estimator(), consistent.y_observed)
                    .residual_norm1,
                1.0);
    }
    const AttackResult unrestricted = chosen_victim_attack(ctx, {victim});
    EXPECT_TRUE(unrestricted.success);
    if (unrestricted.success && consistent.success)
      EXPECT_GE(unrestricted.damage + 1e-6, consistent.damage);
    return;  // one constructed case per seed is enough
  }
  GTEST_SKIP() << "no interior link in this draw";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PerfectCutFeasibility, ::testing::Range(0, 10));

// ---- LP output invariants over random attack instances --------------------

class AttackInvariants : public ::testing::TestWithParam<int> {};

TEST_P(AttackInvariants, EverySuccessfulAttackIsValid) {
  testkit::Source src(static_cast<std::uint64_t>(2000 + GetParam()));
  auto sc = testkit::gen_er_scenario(src, 20, 0.25);
  ASSERT_TRUE(sc.has_value());

  for (int trial = 0; trial < 10; ++trial) {
    testkit::gen_resample_metrics(src, *sc);
    const std::size_t na = 1 + src.index(3);
    const auto att = src.distinct_indices(20, na);
    AttackContext ctx =
        sc->context(std::vector<NodeId>(att.begin(), att.end()));
    const auto lm = ctx.controlled_links();
    const LinkId victim = src.index(sc->graph().num_links());
    if (std::find(lm.begin(), lm.end(), victim) != lm.end()) continue;

    const AttackResult r = chosen_victim_attack(ctx, {victim});
    if (!r.success) continue;
    // Full independent re-derivation must confirm the LP's claims.
    EXPECT_TRUE(verify_chosen_victim_result(ctx, r));
    // Damage equals the L1 norm by construction (Definition 2).
    EXPECT_NEAR(r.damage, r.m.norm1(), 1e-9);
    // The observed measurements dominate the honest ones (m ⪰ 0).
    EXPECT_TRUE(r.y_observed.componentwise_geq(ctx.true_measurements(),
                                               1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackInvariants, ::testing::Range(0, 10));

// ---- Theorem 2 (monotonicity): a larger manipulation support never hurts --
//
// The proof's core step is M_k ⊂ M_s: with the constraint set held fixed,
// allowing m to be nonzero on MORE paths preserves every feasible solution.
// We test it at the LP layer: same bands (built from the small attacker
// set's controlled links + the victim), support widened by extra attackers.

class CoverageMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CoverageMonotonicity, WiderSupportPreservesFeasibility) {
  testkit::Source src(static_cast<std::uint64_t>(3000 + GetParam()));
  auto sc = testkit::gen_er_scenario(src, 18, 0.28);
  ASSERT_TRUE(sc.has_value());

  const auto base = src.distinct_indices(18, 2);
  std::vector<NodeId> small(base.begin(), base.end());
  std::vector<NodeId> big = small;
  for (NodeId v = 0; v < 18 && big.size() < 6; ++v)
    if (std::find(big.begin(), big.end(), v) == big.end()) big.push_back(v);

  AttackContext ctx_small = sc->context(small);
  // Same constraint set as ctx_small (its L_m bands), wider support: reuse
  // the small context but swap in the big attacker list, which only widens
  // attacker_path_indices(); bands below are built from the SMALL L_m.
  const auto lm_small = ctx_small.controlled_links();
  AttackContext ctx_wide = ctx_small;
  ctx_wide.attackers = big;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (LinkId victim = 0; victim < sc->graph().num_links(); ++victim) {
    if (std::find(lm_small.begin(), lm_small.end(), victim) !=
        lm_small.end())
      continue;
    std::vector<LinkBand> bands;
    for (LinkId l : lm_small)
      bands.push_back({l, -kInf, ctx_small.thresholds.lower - 1.0});
    bands.push_back({victim, ctx_small.thresholds.upper + 1.0, kInf});

    const AttackResult rs = solve_attack_lp(ctx_small, bands, {victim});
    if (!rs.success) continue;
    const AttackResult rw = solve_attack_lp(ctx_wide, bands, {victim});
    EXPECT_TRUE(rw.success) << "victim " << victim;
    if (rw.success) EXPECT_GE(rw.damage + 1e-5, rs.damage);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageMonotonicity, ::testing::Range(0, 8));

// ---- Estimator exactness across random identifiable systems ---------------

class EstimatorExactness : public ::testing::TestWithParam<int> {};

TEST_P(EstimatorExactness, RecoversTruthOnRandomTopologies) {
  testkit::Source src(static_cast<std::uint64_t>(4000 + GetParam()));
  auto sc = testkit::gen_er_scenario(src, 16, 0.3);
  ASSERT_TRUE(sc.has_value());
  for (int rep = 0; rep < 5; ++rep) {
    testkit::gen_resample_metrics(src, *sc);
    const Vector x_hat =
        sc->estimator().estimate(sc->clean_measurements());
    EXPECT_TRUE(approx_equal(x_hat, sc->x_true(), 1e-6));
    EXPECT_LT(
        detect_scapegoating(sc->estimator(), sc->clean_measurements())
            .residual_norm1,
        1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorExactness, ::testing::Range(0, 8));

}  // namespace
}  // namespace scapegoat
