// Tests for the misdirected-recovery assessment.

#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include "attack/chosen_victim.hpp"
#include "attack/max_damage.hpp"
#include "topology/example_networks.hpp"
#include "topology/isp.hpp"

namespace scapegoat {
namespace {

TEST(Recovery, MisledRecoveryIsWorseThanOracle) {
  Rng rng(701);
  Scenario scenario = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = scenario.context(net.attackers);
  const AttackResult attack = chosen_victim_attack(
      ctx, {0}, ManipulationMode::kUnrestricted,
      CollateralPolicy::kAvoidAbnormal);
  ASSERT_TRUE(attack.success);

  RecoveryOptions opt;
  opt.demand_pairs = 400;
  Rng demand_rng(702);
  const RecoveryAssessment a =
      assess_recovery(scenario, ctx, attack, opt, demand_rng);
  ASSERT_GT(a.drained_links, 0u);  // the scapegoat got drained
  // Tax-aware oracle routing is at least as good as the misled policy that
  // drains an innocent link while crossing attackers blindly. (Both
  // optimize the same true-cost metric; the oracle has correct weights.)
  EXPECT_LE(a.informed_delay_ms,
            a.misled_delay_ms + opt.attacker_tax_ms / 2.0);
  EXPECT_GT(a.misled_delay_ms, 0.0);
}

TEST(Recovery, ExacerbationIsNonNegativeOnFig1) {
  // Draining the scapegoated link (M1-A) removes M1's ONLY link... link 1
  // is M1's sole attachment, so misled demands involving M1 become
  // unroutable — a drastic, visible form of exacerbation.
  Rng rng(703);
  Scenario scenario = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = scenario.context(net.attackers);
  const AttackResult attack = chosen_victim_attack(
      ctx, {0}, ManipulationMode::kUnrestricted,
      CollateralPolicy::kAvoidAbnormal);
  ASSERT_TRUE(attack.success);
  RecoveryOptions opt;
  opt.demand_pairs = 300;
  Rng demand_rng(704);
  const RecoveryAssessment a =
      assess_recovery(scenario, ctx, attack, opt, demand_rng);
  EXPECT_GT(a.unroutable, 0u);
}

TEST(Recovery, NoDrainWhenNothingReadsAbnormal) {
  // Obfuscation-style outcomes (everything uncertain) drain nothing; the
  // misled policy then routes on believed (inflated) metrics but keeps all
  // links in service.
  Rng rng(705);
  Scenario scenario = Scenario::fig1(rng);
  ExampleNetwork net = fig1_network();
  AttackContext ctx = scenario.context(net.attackers);
  AttackResult attack = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(attack.success);
  // Overwrite states as if everything were uncertain.
  for (auto& s : attack.states) s = LinkState::kUncertain;
  RecoveryOptions opt;
  opt.demand_pairs = 100;
  Rng demand_rng(706);
  const RecoveryAssessment a =
      assess_recovery(scenario, ctx, attack, opt, demand_rng);
  EXPECT_EQ(a.drained_links, 0u);
  EXPECT_EQ(a.unroutable, 0u);  // nothing drained ⇒ everything routable
}

TEST(Recovery, IspScaleRun) {
  Rng rng(707);
  auto scenario = Scenario::from_graph(isp_topology(IspParams{}, rng), rng);
  ASSERT_TRUE(scenario.has_value());
  NodeId hub = 0;
  for (NodeId v = 0; v < scenario->graph().num_nodes(); ++v)
    if (scenario->graph().degree(v) > scenario->graph().degree(hub)) hub = v;
  AttackContext ctx = scenario->context({hub});
  MaxDamageOptions md;
  md.max_candidates = 16;
  md.collateral = CollateralPolicy::kAvoidAbnormal;
  const MaxDamageResult attack = max_damage_attack(ctx, md);
  if (!attack.best.success) GTEST_SKIP() << "hub found no scapegoat";

  RecoveryOptions opt;
  opt.demand_pairs = 150;
  Rng demand_rng(708);
  const RecoveryAssessment a =
      assess_recovery(*scenario, ctx, attack.best, opt, demand_rng);
  EXPECT_GT(a.baseline_delay_ms, 0.0);
  EXPECT_GT(a.misled_delay_ms, 0.0);
  // The oracle (tax-aware, correct weights, no drained constraint) is never
  // meaningfully worse than the misled policy.
  EXPECT_LE(a.informed_delay_ms,
            a.misled_delay_ms + opt.attacker_tax_ms / 2.0);
}

}  // namespace
}  // namespace scapegoat
