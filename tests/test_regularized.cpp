// Tests for the Tikhonov-regularized estimator.

#include "tomography/regularized.hpp"

#include <gtest/gtest.h>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class RegularizedTest : public ::testing::Test {
 protected:
  RegularizedTest() : rng_(501), scenario_(Scenario::fig1(rng_)) {}

  Rng rng_;
  Scenario scenario_;
};

TEST_F(RegularizedTest, LambdaZeroMatchesLeastSquares) {
  RegularizedEstimator reg(scenario_.estimator().r(), 0.0,
                           Vector(10, 10.5));
  ASSERT_TRUE(reg.ok());
  const Vector y = scenario_.clean_measurements();
  EXPECT_TRUE(approx_equal(reg.estimate(y),
                           scenario_.estimator().estimate(y), 1e-7));
}

TEST_F(RegularizedTest, HugeLambdaReturnsThePrior) {
  const Vector prior(10, 10.5);
  RegularizedEstimator reg(scenario_.estimator().r(), 1e12, prior);
  ASSERT_TRUE(reg.ok());
  const Vector x = reg.estimate(scenario_.clean_measurements());
  EXPECT_TRUE(approx_equal(x, prior, 1e-3));
}

TEST_F(RegularizedTest, ModerateLambdaShrinksTowardPrior) {
  const Vector prior(10, 10.5);
  RegularizedEstimator reg(scenario_.estimator().r(), 5.0, prior);
  ASSERT_TRUE(reg.ok());
  // Attack the system, then compare how far each estimator lets the victim
  // estimate run.
  const ExampleNetwork net = fig1_network();
  AttackContext ctx = scenario_.context(net.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {0});
  ASSERT_TRUE(r.success);
  const Vector x_plain = scenario_.estimator().estimate(r.y_observed);
  const Vector x_reg = reg.estimate(r.y_observed);
  EXPECT_LT(x_reg[0], x_plain[0]);  // shrinkage blunts the spike
  EXPECT_GT(x_reg[0], prior[0]);    // but doesn't erase it
}

TEST_F(RegularizedTest, WorksOnUnderdeterminedSystems) {
  // Only 5 paths → rank < 10: Eq. 2 fails, the regularized solve doesn't.
  ExampleNetwork net = fig1_network();
  std::vector<Path> few(net.paths.begin(), net.paths.begin() + 5);
  const Matrix r = routing_matrix(net.graph, few);
  ASSERT_FALSE(is_identifiable(r));
  RegularizedEstimator reg(r, 1.0, Vector(10, 10.5));
  ASSERT_TRUE(reg.ok());
  Vector y(5, 50.0);
  const Vector x = reg.estimate(y);
  EXPECT_EQ(x.size(), 10u);
  for (double xi : x) EXPECT_GE(xi, 0.0);
}

TEST_F(RegularizedTest, HonestBiasGrowsWithLambda) {
  const Vector prior(10, 10.5);
  const Vector y = scenario_.clean_measurements();
  double prev_err = 0.0;
  for (double lambda : {0.0, 1.0, 10.0, 100.0}) {
    RegularizedEstimator reg(scenario_.estimator().r(), lambda, prior);
    ASSERT_TRUE(reg.ok());
    const double err = (reg.estimate(y) - scenario_.x_true()).norm_inf();
    EXPECT_GE(err + 1e-9, prev_err);  // bias is monotone in λ
    prev_err = err;
  }
}

}  // namespace
}  // namespace scapegoat
