// Revised simplex unit suite: known-optimum models, status parity with the
// tableau on the tricky shapes (infeasible, unbounded, equality chains,
// redundant rows, free variables, bound flips), certificate contract on
// iteration limits, and lp::solve's backend routing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/model.hpp"
#include "lp/revised_simplex.hpp"
#include "lp/simplex.hpp"
#include "util/random.hpp"

namespace scapegoat::lp {
namespace {

SimplexOptions revised_options() {
  SimplexOptions opt;
  opt.backend = LpBackend::kRevised;
  return opt;
}

TEST(RevisedSimplex, SolvesKnownMaximization) {
  // max x + y  s.t.  x + y <= 1.5, x,y in [0,1] → 1.5.
  Model m(Sense::kMaximize);
  const std::size_t x = m.add_variable(0.0, 1.0, 1.0, "x");
  const std::size_t y = m.add_variable(0.0, 1.0, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kLessEqual, 1.5);

  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.5, 1e-9);
  EXPECT_LE(m.max_violation(s.x), 1e-9);
  EXPECT_EQ(s.basis.size(), 1u);
}

TEST(RevisedSimplex, SolvesKnownMinimization) {
  // min x + 2y  s.t.  x + y = 2, x,y in [0,3] → x=2, y=0, objective 2.
  Model m(Sense::kMinimize);
  const std::size_t x = m.add_variable(0.0, 3.0, 1.0, "x");
  const std::size_t y = m.add_variable(0.0, 3.0, 2.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 2.0);

  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(RevisedSimplex, DetectsInfeasibility) {
  Model m(Sense::kMaximize);
  const std::size_t x = m.add_variable(0.0, 1.0, 1.0);
  m.add_constraint({{x, 1.0}}, RowType::kGreaterEqual, 2.0);
  EXPECT_EQ(solve_revised(m).status, SolveStatus::kInfeasible);
}

TEST(RevisedSimplex, DetectsUnboundedness) {
  Model m(Sense::kMaximize);
  const std::size_t x = m.add_variable(0.0, kInfinity, 1.0);
  const std::size_t y = m.add_variable(0.0, kInfinity, 0.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, RowType::kLessEqual, 1.0);
  EXPECT_EQ(solve_revised(m).status, SolveStatus::kUnbounded);
}

TEST(RevisedSimplex, HandlesFreeVariables) {
  // min x + y with free x: x + y = 1, y in [0, 10], x free, minimize x →
  // pushed by nothing? min x + y = 1 everywhere on the line; add a second
  // row to pin: x >= -3 via x + 0y >= -3. Optimal anywhere; use objective
  // min 2x + y instead: on x + y = 1, obj = x + 1 → minimized at x = -3.
  Model m(Sense::kMinimize);
  const std::size_t x = m.add_variable(-kInfinity, kInfinity, 2.0, "x");
  const std::size_t y = m.add_variable(0.0, 10.0, 1.0, "y");
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 1.0);
  m.add_constraint({{x, 1.0}}, RowType::kGreaterEqual, -3.0);

  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[0], -3.0, 1e-8);
  EXPECT_NEAR(s.x[1], 4.0, 1e-8);
  EXPECT_NEAR(s.objective, -2.0, 1e-8);
}

TEST(RevisedSimplex, NegativeAndShiftedBounds) {
  // max x + y over x in [-5, -1], y in [2, 4], x + y <= 1 → x=-1, y=2... no:
  // x+y ≤ 1 binds: best is x=-1, y=2 (sum 1). Objective 1.
  Model m(Sense::kMaximize);
  const std::size_t x = m.add_variable(-5.0, -1.0, 1.0);
  const std::size_t y = m.add_variable(2.0, 4.0, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kLessEqual, 1.0);

  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
  EXPECT_LE(m.max_violation(s.x), 1e-9);
}

TEST(RevisedSimplex, PureBoundFlipProblem) {
  // No constraint binds: the optimum is a bound flip per variable, no basis
  // change at all (the m == 0 fast path plus the flip machinery).
  Model m(Sense::kMaximize);
  m.add_variable(-1.0, 2.0, 3.0);
  m.add_variable(0.0, 4.0, -1.0);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 6.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(RevisedSimplex, UnboundedWithoutConstraints) {
  Model m(Sense::kMaximize);
  m.add_variable(0.0, kInfinity, 1.0);
  EXPECT_EQ(solve_revised(m).status, SolveStatus::kUnbounded);
}

TEST(RevisedSimplex, EqualityChainSystem) {
  // x1 = 1, x_{k+1} - x_k = 1 → x_k = k (unique feasible point).
  Model m(Sense::kMaximize);
  const std::size_t n = 20;
  for (std::size_t j = 0; j < n; ++j)
    m.add_variable(0.0, kInfinity, j + 1 == n ? -1.0 : 0.0);
  m.add_constraint({{0, 1.0}}, RowType::kEqual, 1.0);
  for (std::size_t j = 0; j + 1 < n; ++j)
    m.add_constraint({{j + 1, 1.0}, {j, -1.0}}, RowType::kEqual, 1.0);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_NEAR(s.x[j], static_cast<double>(j + 1), 1e-7);
}

TEST(RevisedSimplex, RedundantRowsDoNotConfusePhase1) {
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0.0, kInfinity, 1.0);
  auto y = m.add_variable(0.0, kInfinity, 1.0);
  for (int rep = 0; rep < 3; ++rep)
    m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 4.0);
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(RevisedSimplex, IterationLimitReturnsCertificate) {
  Rng rng(31337);
  Model m(Sense::kMaximize);
  const std::size_t vars = 40, rows = 25;
  for (std::size_t j = 0; j < vars; ++j) m.add_variable(0.0, 100.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < vars; ++j)
      terms.push_back({j, rng.uniform(0.1, 1.0)});
    m.add_constraint(std::move(terms), RowType::kLessEqual,
                     rng.uniform(50.0, 200.0));
  }
  SimplexOptions opt;
  opt.max_iterations = 3;  // guaranteed to stop mid-flight
  const Solution s = solve_revised(m, opt);
  ASSERT_EQ(s.status, SolveStatus::kIterationLimit);
  EXPECT_EQ(s.basis.size(), rows);      // the exit basis, not an empty husk
  EXPECT_EQ(s.x.size(), vars);          // the basic point where it stopped
  EXPECT_LE(s.iterations, 3u);
}

TEST(RevisedSimplex, RefactorizationSurvivesLongPivotSequences) {
  // > 64 pivots forces at least one LU refresh mid-solve; the optimum must
  // still verify against feasibility and a Monte Carlo bound.
  Rng rng(777);
  Model m(Sense::kMaximize);
  const std::size_t vars = 60, rows = 45;
  for (std::size_t j = 0; j < vars; ++j)
    m.add_variable(0.0, rng.uniform(1.0, 10.0), rng.uniform(-1.0, 2.0));
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < vars; ++j) {
      const double c = rng.uniform(-1.0, 1.0);
      if (std::abs(c) > 0.3) terms.push_back({j, c});
    }
    if (terms.empty()) continue;
    m.add_constraint(std::move(terms), RowType::kLessEqual,
                     rng.uniform(5.0, 50.0));
  }
  const Solution s = solve_revised(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-6);
  // Random feasible points can't beat the reported optimum.
  std::vector<double> x(vars);
  for (int sample = 0; sample < 200; ++sample) {
    for (std::size_t j = 0; j < vars; ++j)
      x[j] = rng.uniform(m.variable(j).lower, m.variable(j).upper);
    if (m.max_violation(x) > 1e-9) continue;
    EXPECT_LE(m.objective_value(x), s.objective + 1e-6);
  }
}

TEST(RevisedSimplex, AgreesWithTableauOnAnchoredBattery) {
  // Small randomized cross-check, a deterministic complement to the
  // lp_revised_simplex_matches_tableau property.
  Rng rng(4242);
  for (int instance = 0; instance < 25; ++instance) {
    Model m(Sense::kMaximize);
    const std::size_t n = 2 + rng.index(4);
    std::vector<double> anchor(n);
    for (std::size_t j = 0; j < n; ++j) {
      const double lo = rng.uniform(-4.0, 1.0);
      const double hi = lo + rng.uniform(0.5, 5.0);
      anchor[j] = rng.uniform(lo, hi);
      m.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
    }
    const std::size_t rows = 1 + rng.index(4);
    for (std::size_t i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      double at_anchor = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double c = rng.uniform(-1.5, 1.5);
        if (std::abs(c) < 0.1) continue;
        terms.push_back({j, c});
        at_anchor += c * anchor[j];
      }
      if (terms.empty()) continue;
      switch (rng.uniform_int(0, 2)) {
        case 0:
          m.add_constraint(std::move(terms), RowType::kLessEqual,
                           at_anchor + rng.uniform(0.0, 2.0));
          break;
        case 1:
          m.add_constraint(std::move(terms), RowType::kGreaterEqual,
                           at_anchor - rng.uniform(0.0, 2.0));
          break;
        default:
          m.add_constraint(std::move(terms), RowType::kEqual, at_anchor);
          break;
      }
    }
    SimplexOptions tab;
    tab.backend = LpBackend::kTableau;
    const Solution st = solve(m, tab);
    const Solution sr = solve(m, revised_options());
    ASSERT_EQ(st.status, SolveStatus::kOptimal) << "instance " << instance;
    ASSERT_EQ(sr.status, SolveStatus::kOptimal) << "instance " << instance;
    EXPECT_NEAR(st.objective, sr.objective,
                1e-6 * (1.0 + std::abs(st.objective)))
        << "instance " << instance;
    EXPECT_LE(m.max_violation(sr.x), 1e-6);
  }
}

TEST(LpBackendRouting, AutoSwitchesOnEstimatedTableauCells) {
  // Tiny model stays on the tableau under kAuto; a model whose estimated
  // tableau crosses kRevisedCellThreshold routes to the revised solver.
  // Observable difference: both must solve correctly (the routing itself is
  // covered by the obs counters and the threshold arithmetic here).
  Model small(Sense::kMaximize);
  small.add_variable(0.0, 1.0, 1.0);
  small.add_constraint({{0, 1.0}}, RowType::kLessEqual, 0.5);
  const Solution s = solve(small);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 0.5, 1e-9);

  // 300 doubly-bounded vars × 150 rows: (150+300) rows × (300+900) cols
  // ≈ 540k cells ≥ 1<<18 → revised path under kAuto. The answer is easy to
  // verify: maximize Σx with generous rows → every variable at its cap.
  Model big(Sense::kMaximize);
  const std::size_t vars = 300;
  for (std::size_t j = 0; j < vars; ++j) big.add_variable(0.0, 1.0, 1.0);
  for (std::size_t i = 0; i < 150; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = i; j < vars; j += 150) terms.push_back({j, 1.0});
    big.add_constraint(std::move(terms), RowType::kLessEqual, 1e6);
  }
  const Solution sb = solve(big);
  ASSERT_EQ(sb.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sb.objective, static_cast<double>(vars), 1e-6);
}

TEST(LpBackendEnum, RoundTripsThroughStrings) {
  for (LpBackend b :
       {LpBackend::kAuto, LpBackend::kTableau, LpBackend::kRevised}) {
    const auto parsed = lp_backend_from_string(to_string(b));
    ASSERT_TRUE(parsed.has_value()) << to_string(b);
    EXPECT_EQ(*parsed, b);
  }
  EXPECT_FALSE(lp_backend_from_string("dense").has_value());
}

}  // namespace
}  // namespace scapegoat::lp
