// Unit coverage for the robustness layer: the Expected error taxonomy, the
// stateless fault injector's determinism, the retry policy arithmetic,
// median-of-retries, and degraded estimation (row dropping, rank
// certification, regularized fallback, structured errors).

#include <cmath>
#include <cstddef>

#include <gtest/gtest.h>

#include "linalg/least_squares.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "robust/degraded.hpp"
#include "robust/expected.hpp"
#include "robust/faults.hpp"
#include "robust/retry.hpp"

namespace scapegoat::robust {
namespace {

// ------------------------------------------------------------- Expected --

TEST(Expected, HoldsValue) {
  Expected<int> e = 42;
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(-1), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e = Error{ErrorCode::kRankDeficient, "rank 3 of 5"};
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.code(), ErrorCode::kRankDeficient);
  EXPECT_EQ(e.value_or(-1), -1);
  EXPECT_NE(e.error().to_string().find("rank 3 of 5"), std::string::npos);
}

TEST(Expected, StatusConveysSuccess) {
  Status s = ok_status();
  EXPECT_TRUE(s.ok());
  Status f = Error{ErrorCode::kIoError, "disk"};
  EXPECT_FALSE(f.ok());
}

TEST(Expected, EveryCodeHasAName) {
  for (ErrorCode c :
       {ErrorCode::kInvalidInput, ErrorCode::kEmptyInput,
        ErrorCode::kDimensionMismatch, ErrorCode::kRankDeficient,
        ErrorCode::kIllConditioned, ErrorCode::kIterationLimit,
        ErrorCode::kMissingData, ErrorCode::kParseError, ErrorCode::kIoError}) {
    EXPECT_FALSE(to_string(c).empty());
    EXPECT_EQ(to_string(c).find('?'), std::string::npos);
  }
}

// -------------------------------------------------------- FaultInjector --

TEST(FaultInjector, DefaultNeverFaults) {
  FaultInjector f;
  EXPECT_FALSE(f.spec().any());
  for (std::size_t p = 0; p < 50; ++p) {
    EXPECT_FALSE(f.probe_lost(p, 0, 0));
    EXPECT_FALSE(f.link_failed(p));
    EXPECT_FALSE(f.monitor_down(p));
    EXPECT_EQ(f.clock_jitter(p, 0, 0), 0.0);
  }
}

TEST(FaultInjector, CertainLossAlwaysHits) {
  FaultSpec spec;
  spec.probe_loss_rate = 1.0;
  FaultInjector f(spec, 7);
  for (std::size_t p = 0; p < 20; ++p)
    for (std::size_t probe = 0; probe < 3; ++probe)
      EXPECT_TRUE(f.probe_lost(p, probe, 0));
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultSpec spec;
  spec.probe_loss_rate = 0.3;
  spec.duplicate_rate = 0.2;
  spec.clock_jitter_ms = 4.0;
  FaultInjector a(spec, 123);
  FaultInjector b(spec, 123);
  for (std::size_t p = 0; p < 40; ++p) {
    EXPECT_EQ(a.probe_lost(p, p % 5, p % 3), b.probe_lost(p, p % 5, p % 3));
    EXPECT_EQ(a.probe_duplicated(p, 0, 0), b.probe_duplicated(p, 0, 0));
    EXPECT_EQ(a.clock_jitter(p, 1, 2), b.clock_jitter(p, 1, 2));
  }
}

TEST(FaultInjector, DifferentSeedsDecorrelate) {
  FaultSpec spec;
  spec.probe_loss_rate = 0.5;
  FaultInjector a(spec, 1);
  FaultInjector b(spec, 2);
  std::size_t differs = 0;
  for (std::size_t p = 0; p < 200; ++p)
    if (a.probe_lost(p, 0, 0) != b.probe_lost(p, 0, 0)) ++differs;
  EXPECT_GT(differs, 50u);  // ~100 expected for independent fair coins
}

TEST(FaultInjector, RetryRoundsDrawFreshFates) {
  FaultSpec spec;
  spec.probe_loss_rate = 0.5;
  FaultInjector f(spec, 99);
  std::size_t differs = 0;
  for (std::size_t p = 0; p < 200; ++p)
    if (f.probe_lost(p, 0, 0) != f.probe_lost(p, 0, 1)) ++differs;
  EXPECT_GT(differs, 50u);
}

TEST(FaultInjector, LossFrequencyTracksRate) {
  FaultSpec spec;
  spec.probe_loss_rate = 0.2;
  FaultInjector f(spec, 5);
  std::size_t lost = 0;
  constexpr std::size_t kDraws = 5000;
  for (std::size_t i = 0; i < kDraws; ++i)
    if (f.probe_lost(i, 0, 0)) ++lost;
  const double freq = static_cast<double>(lost) / kDraws;
  EXPECT_NEAR(freq, 0.2, 0.03);
}

TEST(FaultInjector, ClockJitterBoundedAndSigned) {
  FaultSpec spec;
  spec.clock_jitter_ms = 3.0;
  FaultInjector f(spec, 11);
  bool saw_negative = false, saw_positive = false;
  for (std::size_t p = 0; p < 500; ++p) {
    const double j = f.clock_jitter(p, 0, 0);
    EXPECT_LT(std::abs(j), 3.0);
    saw_negative |= j < 0.0;
    saw_positive |= j > 0.0;
  }
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(FaultInjector, WholeRunOutagesAreStable) {
  FaultSpec spec;
  spec.link_failure_rate = 0.5;
  spec.monitor_outage_rate = 0.5;
  FaultInjector f(spec, 3);
  for (std::size_t e = 0; e < 30; ++e) {
    EXPECT_EQ(f.link_failed(e), f.link_failed(e));
    EXPECT_EQ(f.monitor_down(e), f.monitor_down(e));
  }
}

// ---------------------------------------------------------- RetryPolicy --

TEST(RetryPolicy, AttemptBudget) {
  RetryPolicy p;
  p.max_retries = 3;
  EXPECT_EQ(p.attempts(), 4u);
}

TEST(RetryPolicy, DeadlineGrowsExponentially) {
  RetryPolicy p;
  p.probe_deadline_ms = 100.0;
  p.backoff_factor = 2.0;
  EXPECT_DOUBLE_EQ(p.deadline_for(0), 100.0);
  EXPECT_DOUBLE_EQ(p.deadline_for(1), 200.0);
  EXPECT_DOUBLE_EQ(p.deadline_for(2), 400.0);
}

TEST(RetryPolicy, ZeroDeadlineStaysDisabled) {
  RetryPolicy p;
  p.probe_deadline_ms = 0.0;
  EXPECT_EQ(p.deadline_for(0), 0.0);
  EXPECT_EQ(p.deadline_for(5), 0.0);
}

TEST(RetryPolicy, BackoffBeforeFirstAttemptIsZero) {
  RetryPolicy p;
  p.backoff_base_ms = 10.0;
  p.backoff_factor = 2.0;
  EXPECT_EQ(p.backoff_before(0), 0.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(1), 10.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(2), 20.0);
}

TEST(RetryPolicy, RetryAfterHintFloorsTheBackoff) {
  RetryPolicy p;
  p.backoff_base_ms = 10.0;
  p.backoff_factor = 2.0;
  // Hint above the curve: the server's ask wins.
  EXPECT_DOUBLE_EQ(p.backoff_before(1, -1.0, 50.0), 50.0);
  // Hint below the curve: our own backoff still applies.
  EXPECT_DOUBLE_EQ(p.backoff_before(3, -1.0, 5.0), 40.0);
  // No hint (<= 0) degrades to the plain form.
  EXPECT_DOUBLE_EQ(p.backoff_before(2, -1.0, 0.0), p.backoff_before(2, -1.0));
  EXPECT_DOUBLE_EQ(p.backoff_before(2, -1.0, -3.0), p.backoff_before(2, -1.0));
}

TEST(RetryPolicy, RetryAfterHintSaturatesAndClamps) {
  RetryPolicy p;
  p.backoff_base_ms = 10.0;
  p.max_backoff_ms = 1000.0;
  // An hour-long server hint saturates at the policy ceiling...
  EXPECT_DOUBLE_EQ(p.backoff_before(1, -1.0, 3.6e6), 1000.0);
  // ...and the remaining deadline clamps whatever survives.
  EXPECT_DOUBLE_EQ(p.backoff_before(1, 25.0, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(p.backoff_before(1, 0.0, 50.0), 0.0);
}

TEST(RetryPolicy, RetryFitsHonoursDeadlineAndCeiling) {
  RetryPolicy p;
  p.max_backoff_ms = 1000.0;
  EXPECT_TRUE(p.retry_fits(-1.0, 1e9));   // no deadline: always fits
  EXPECT_TRUE(p.retry_fits(100.0, 50.0));
  EXPECT_FALSE(p.retry_fits(100.0, 200.0));
  // A saturating hint fits iff the ceiling itself fits.
  EXPECT_TRUE(p.retry_fits(1000.0, 1e9));
  EXPECT_FALSE(p.retry_fits(999.0, 1e9));
  EXPECT_TRUE(p.retry_fits(0.0, 0.0));    // nothing to wait for
}

TEST(Median, OddEvenEmptyAndOutlier) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
  // One retry measured through a transient 1000 ms fault cannot drag it.
  EXPECT_DOUBLE_EQ(median({10.0, 11.0, 1000.0}), 11.0);
}

// --------------------------------------------------- DegradedMeasurement --

TEST(DegradedMeasurement, AllMeasuredIsComplete) {
  auto m = DegradedMeasurement::all_measured(Vector{1.0, 2.0, 3.0});
  EXPECT_TRUE(m.complete());
  EXPECT_EQ(m.num_measured(), 3u);
  EXPECT_DOUBLE_EQ(m.measured_fraction(), 1.0);
}

TEST(DegradedMeasurement, PartialMask) {
  DegradedMeasurement m;
  m.y = Vector{1.0, 0.0, 3.0, 4.0};
  m.measured = {true, false, true, true};
  EXPECT_FALSE(m.complete());
  EXPECT_EQ(m.num_measured(), 3u);
  EXPECT_DOUBLE_EQ(m.measured_fraction(), 0.75);
}

// ----------------------------------------------------- degraded_estimate --

// A 4×2 system: x = (3, 5), rows redundant enough to lose one.
Matrix test_r() {
  return Matrix{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, 2.0}};
}

Vector test_y() { return Vector{3.0, 5.0, 8.0, 13.0}; }

TEST(DegradedEstimate, CompleteMeasurementsRecoverExactly) {
  auto res =
      degraded_estimate(test_r(), DegradedMeasurement::all_measured(test_y()));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->method, SolveMethod::kFullRank);
  EXPECT_EQ(res->paths_used, 4u);
  EXPECT_EQ(res->rank, 2u);
  EXPECT_GT(res->condition, 0.0);
  EXPECT_NEAR(res->x[0], 3.0, 1e-9);
  EXPECT_NEAR(res->x[1], 5.0, 1e-9);
}

TEST(DegradedEstimate, SurvivesDroppedRedundantRows) {
  DegradedMeasurement m;
  m.y = test_y();
  m.measured = {true, false, true, false};  // rows 0 and 2 still identify x
  auto res = degraded_estimate(test_r(), m);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->method, SolveMethod::kFullRank);
  EXPECT_EQ(res->paths_used, 2u);
  EXPECT_NEAR(res->x[0], 3.0, 1e-9);
  EXPECT_NEAR(res->x[1], 5.0, 1e-9);
}

TEST(DegradedEstimate, RankDeficiencyFallsBackRegularized) {
  DegradedMeasurement m;
  m.y = test_y();
  m.measured = {true, false, false, false};  // one row, two unknowns
  auto res = degraded_estimate(test_r(), m);
  ASSERT_TRUE(res.ok()) << res.error().to_string();
  EXPECT_EQ(res->method, SolveMethod::kRegularizedFallback);
  EXPECT_EQ(res->paths_used, 1u);
  EXPECT_LT(res->rank, 2u);
  // The ridge solve still honors the surviving equation approximately.
  EXPECT_NEAR(res->x[0], 3.0, 0.1);
}

TEST(DegradedEstimate, FallbackShrinksTowardPrior) {
  DegradedMeasurement m;
  m.y = test_y();
  m.measured = {true, false, false, false};
  const Vector prior{0.0, 5.0};
  DegradedOptions opt;
  opt.prior = &prior;
  auto res = degraded_estimate(test_r(), m, opt);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->method, SolveMethod::kRegularizedFallback);
  // x[1] is unconstrained by the measured row; the prior decides it.
  EXPECT_NEAR(res->x[1], 5.0, 0.1);
}

TEST(DegradedEstimate, NothingMeasuredIsStructuredError) {
  DegradedMeasurement m;
  m.y = test_y();
  m.measured = {false, false, false, false};
  auto res = degraded_estimate(test_r(), m);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.code(), ErrorCode::kEmptyInput);
}

TEST(DegradedEstimate, MaskShapeMismatchIsStructuredError) {
  DegradedMeasurement m;
  m.y = Vector{1.0, 2.0};
  m.measured = {true, true};
  auto res = degraded_estimate(test_r(), m);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.code(), ErrorCode::kDimensionMismatch);
}

TEST(DegradedResidual, RestrictsToMeasuredRows) {
  DegradedMeasurement m;
  m.y = Vector{3.0, 999.0, 8.0, 13.0};  // unmeasured row holds garbage
  m.measured = {true, false, true, true};
  auto res = degraded_residual_norm1(test_r(), m, Vector{3.0, 5.0});
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(*res, 0.0, 1e-9);  // garbage row must not contribute
}

// --------------------------------------------------- checked linalg APIs --

TEST(TryPseudoInverse, EmptyAndDeficientAreErrors) {
  EXPECT_EQ(try_pseudo_inverse(Matrix{}).code(), ErrorCode::kEmptyInput);
  // Wide matrix: fewer rows than columns can never have full column rank.
  Matrix wide(1, 3, 1.0);
  EXPECT_EQ(try_pseudo_inverse(wide).code(), ErrorCode::kRankDeficient);
  // Duplicated column: numerically rank deficient.
  Matrix dup{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_EQ(try_pseudo_inverse(dup).code(), ErrorCode::kRankDeficient);
}

TEST(TryPseudoInverse, FullRankSucceeds) {
  auto g = try_pseudo_inverse(test_r());
  ASSERT_TRUE(g.ok());
  // G R = I for full-column-rank R.
  const Matrix gr = *g * test_r();
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(gr(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(TryLeastSquares, StructuredErrors) {
  EXPECT_EQ(try_least_squares(test_r(), Vector{1.0}).code(),
            ErrorCode::kDimensionMismatch);
  Matrix dup{{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  EXPECT_EQ(try_least_squares(dup, Vector{1.0, 2.0, 3.0}).code(),
            ErrorCode::kRankDeficient);
}

TEST(RidgeLeastSquares, RejectsNonPositiveLambda) {
  EXPECT_EQ(ridge_least_squares(test_r(), test_y(), 0.0).code(),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(ridge_least_squares(test_r(), test_y(), -1.0).code(),
            ErrorCode::kInvalidInput);
}

TEST(RidgeLeastSquares, SmallLambdaNearsExactSolution) {
  auto x = ridge_least_squares(test_r(), test_y(), 1e-10);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-6);
  EXPECT_NEAR((*x)[1], 5.0, 1e-6);
}

TEST(RidgeLeastSquares, DefinedOnUnderdeterminedSystems) {
  Matrix wide{{1.0, 1.0}};
  auto x = ridge_least_squares(wide, Vector{2.0}, 1e-6);
  ASSERT_TRUE(x.ok());
  // Minimum-norm flavour: mass splits evenly across the symmetric columns.
  EXPECT_NEAR((*x)[0], 1.0, 1e-3);
  EXPECT_NEAR((*x)[1], 1.0, 1e-3);
}

}  // namespace
}  // namespace scapegoat::robust
