// Tests for the Rocketfuel/edge-list topology loaders.

#include "topology/rocketfuel.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scapegoat {
namespace {

TEST(EdgeList, ParsesSimpleFile) {
  std::istringstream in(
      "# AS example\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30  # triangle\n");
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 3u);
  EXPECT_EQ(topo->graph.num_links(), 3u);
  EXPECT_EQ(topo->original_ids, (std::vector<long>{10, 20, 30}));
}

TEST(EdgeList, DeduplicatesParallelEdges) {
  std::istringstream in("1 2\n2 1\n1 2\n");
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_links(), 1u);
}

TEST(EdgeList, RejectsMalformedLines) {
  std::istringstream missing("1\n");
  EXPECT_FALSE(load_edge_list(missing).has_value());
  std::istringstream extra("1 2 3\n");
  EXPECT_FALSE(load_edge_list(extra).has_value());
  std::istringstream empty("# nothing\n");
  EXPECT_FALSE(load_edge_list(empty).has_value());
}

TEST(RocketfuelCch, ParsesRouterLines) {
  // Shape of real .cch lines: uid @loc [bb] (n) -> <nuid> ... =name rn
  std::istringstream in(
      "1 @Sydney,+Australia bb (2) -> <2> <3> =r1.syd rn\n"
      "2 @Sydney,+Australia bb (1) -> <1> =r2.syd rn\n"
      "3 @Melbourne,+Australia (2) -> <1> {-99} =r1.mel rn\n"
      "-99 external stuff\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 3u);
  EXPECT_EQ(topo->graph.num_links(), 2u);  // 1-2 and 1-3; {-99} skipped
}

TEST(RocketfuelCch, SymmetricDeclarationsCollapse) {
  std::istringstream in(
      "5 (1) -> <6>\n"
      "6 (1) -> <5>\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_links(), 1u);
}

TEST(RocketfuelCch, NoEdgesMeansFailure) {
  std::istringstream in("hello world\n");
  EXPECT_FALSE(load_rocketfuel_cch(in).has_value());
}

TEST(RocketfuelCch, TokensBeforeArrowIgnored) {
  // "<...>"-looking tokens before "->" (e.g. weird names) must not create
  // edges.
  std::istringstream in("7 <8> -> <9>\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 2u);  // 7 and 9 only
  EXPECT_EQ(topo->graph.num_links(), 1u);
}

TEST(LoaderFiles, MissingFileYieldsNullopt) {
  EXPECT_FALSE(load_edge_list_file("/nonexistent/file.txt").has_value());
  EXPECT_FALSE(load_rocketfuel_cch_file("/nonexistent/file.cch").has_value());
}

}  // namespace
}  // namespace scapegoat
