// Tests for the Rocketfuel/edge-list topology loaders.

#include "topology/rocketfuel.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scapegoat {
namespace {

TEST(EdgeList, ParsesSimpleFile) {
  std::istringstream in(
      "# AS example\n"
      "10 20\n"
      "20 30\n"
      "\n"
      "10 30  # triangle\n");
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 3u);
  EXPECT_EQ(topo->graph.num_links(), 3u);
  EXPECT_EQ(topo->original_ids, (std::vector<long>{10, 20, 30}));
}

TEST(EdgeList, DeduplicatesParallelEdges) {
  std::istringstream in("1 2\n2 1\n1 2\n");
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_links(), 1u);
}

TEST(EdgeList, RejectsMalformedLines) {
  std::istringstream missing("1\n");
  EXPECT_FALSE(load_edge_list(missing).has_value());
  std::istringstream extra("1 2 3\n");
  EXPECT_FALSE(load_edge_list(extra).has_value());
  std::istringstream empty("# nothing\n");
  EXPECT_FALSE(load_edge_list(empty).has_value());
}

TEST(RocketfuelCch, ParsesRouterLines) {
  // Shape of real .cch lines: uid @loc [bb] (n) -> <nuid> ... =name rn
  std::istringstream in(
      "1 @Sydney,+Australia bb (2) -> <2> <3> =r1.syd rn\n"
      "2 @Sydney,+Australia bb (1) -> <1> =r2.syd rn\n"
      "3 @Melbourne,+Australia (2) -> <1> {-99} =r1.mel rn\n"
      "-99 external stuff\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 3u);
  EXPECT_EQ(topo->graph.num_links(), 2u);  // 1-2 and 1-3; {-99} skipped
}

TEST(RocketfuelCch, SymmetricDeclarationsCollapse) {
  std::istringstream in(
      "5 (1) -> <6>\n"
      "6 (1) -> <5>\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_links(), 1u);
}

TEST(RocketfuelCch, NoEdgesMeansFailure) {
  std::istringstream in("hello world\n");
  EXPECT_FALSE(load_rocketfuel_cch(in).has_value());
}

TEST(RocketfuelCch, TokensBeforeArrowIgnored) {
  // "<...>"-looking tokens before "->" (e.g. weird names) must not create
  // edges.
  std::istringstream in("7 <8> -> <9>\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 2u);  // 7 and 9 only
  EXPECT_EQ(topo->graph.num_links(), 1u);
}

TEST(EdgeList, MalformedLinesSkippedWithDiagnostics) {
  // A truncated download: one cut-off pair and one line of debris in the
  // middle of good data. The good edges must survive, the bad lines must be
  // counted and named.
  std::istringstream in(
      "10 20\n"
      "30\n"          // truncated pair
      "20 30\n"
      "1 2 3\n"       // debris: three ids
      "10 30\n");
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->graph.num_nodes(), 3u);
  EXPECT_EQ(topo->graph.num_links(), 3u);
  EXPECT_EQ(topo->skipped_lines, 2u);
  ASSERT_EQ(topo->warnings.size(), 2u);
  EXPECT_NE(topo->warnings[0].find("line 2"), std::string::npos);
  EXPECT_NE(topo->warnings[1].find("line 4"), std::string::npos);
}

TEST(EdgeList, WarningMessagesAreCappedButCountsAreNot) {
  std::ostringstream gen;
  gen << "1 2\n";
  for (int i = 0; i < 50; ++i) gen << "7 8 9\n";  // 50 malformed lines
  std::istringstream in(gen.str());
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->skipped_lines, 50u);
  EXPECT_LE(topo->warnings.size(), 20u);
}

TEST(EdgeList, CleanFileHasNoWarnings) {
  std::istringstream in("1 2\n2 3\n");
  auto topo = load_edge_list(in);
  ASSERT_TRUE(topo.has_value());
  EXPECT_EQ(topo->skipped_lines, 0u);
  EXPECT_TRUE(topo->warnings.empty());
}

TEST(RocketfuelCch, GarbageNeighborRefSkippedNotFatal) {
  std::istringstream in("1 (2) -> <garbage> <2>\n");
  auto topo = load_rocketfuel_cch(in);
  ASSERT_TRUE(topo.has_value());  // the readable ref still contributes
  EXPECT_EQ(topo->graph.num_links(), 1u);
  EXPECT_EQ(topo->skipped_lines, 1u);
  ASSERT_FALSE(topo->warnings.empty());
  EXPECT_NE(topo->warnings[0].find("garbage"), std::string::npos);
}

TEST(LoaderFiles, MissingFileYieldsNullopt) {
  EXPECT_FALSE(load_edge_list_file("/nonexistent/file.txt").has_value());
  EXPECT_FALSE(load_rocketfuel_cch_file("/nonexistent/file.cch").has_value());
}

}  // namespace
}  // namespace scapegoat
