// Tests for routing-matrix construction (Eq. 1) beyond the Fig. 1 checks.

#include "tomography/routing_matrix.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace scapegoat {
namespace {

Path one_hop(const Graph& g, LinkId l) {
  Path p;
  p.nodes = {g.link(l).u, g.link(l).v};
  p.links = {l};
  return p;
}

TEST(RoutingMatrix, EntriesAreLinkIncidence) {
  Graph g(4);
  LinkId a = *g.add_link(0, 1);
  LinkId b = *g.add_link(1, 2);
  LinkId c = *g.add_link(2, 3);
  Path p;
  p.nodes = {0, 1, 2};
  p.links = {a, b};
  const Matrix r = routing_matrix(g, {p, one_hop(g, c)});
  EXPECT_EQ(r.rows(), 2u);
  EXPECT_EQ(r.cols(), 3u);
  EXPECT_DOUBLE_EQ(r(0, a), 1.0);
  EXPECT_DOUBLE_EQ(r(0, b), 1.0);
  EXPECT_DOUBLE_EQ(r(0, c), 0.0);
  EXPECT_DOUBLE_EQ(r(1, c), 1.0);
}

TEST(RoutingMatrix, IdentityFromOneHopPaths) {
  Graph g = ring(5);
  std::vector<Path> paths;
  for (LinkId l = 0; l < g.num_links(); ++l) paths.push_back(one_hop(g, l));
  const Matrix r = routing_matrix(g, paths);
  EXPECT_TRUE(approx_equal(r, Matrix::identity(5)));
  EXPECT_TRUE(is_identifiable(r));
}

TEST(RoutingMatrix, IdentifiabilityNeedsEnoughRows) {
  Graph g = ring(5);
  std::vector<Path> paths;
  for (LinkId l = 0; l + 1 < g.num_links(); ++l)
    paths.push_back(one_hop(g, l));
  EXPECT_FALSE(is_identifiable(routing_matrix(g, paths)));
}

TEST(RoutingMatrix, EmptyLinkSetNotIdentifiable) {
  EXPECT_FALSE(is_identifiable(Matrix(3, 0)));
}

TEST(PathsThrough, NodeAndLinkQueries) {
  Graph g = ring(6);
  std::vector<Path> paths;
  for (LinkId l = 0; l < g.num_links(); ++l) paths.push_back(one_hop(g, l));
  // Node 0 is incident to exactly two ring links.
  EXPECT_EQ(paths_through_nodes(paths, {0}).size(), 2u);
  EXPECT_EQ(paths_through_links(paths, {2}).size(), 1u);
  EXPECT_TRUE(paths_through_nodes(paths, {}).empty());
  EXPECT_TRUE(paths_through_links(paths, {}).empty());
  // Multiple query links: no double-counting of a path.
  const auto multi = paths_through_links(paths, {2, 2, 2});
  EXPECT_EQ(multi.size(), 1u);
}

}  // namespace
}  // namespace scapegoat
