// Tests for the Scenario bundle and its configuration plumbing.

#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include "tomography/routing_matrix.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

TEST(Scenario, Fig1ShapeAndDefaults) {
  Rng rng(71);
  Scenario sc = Scenario::fig1(rng);
  EXPECT_EQ(sc.graph().num_nodes(), 7u);
  EXPECT_EQ(sc.estimator().num_paths(), 23u);
  EXPECT_TRUE(sc.estimator().ok());
  EXPECT_EQ(sc.monitors().size(), 3u);
  EXPECT_TRUE(sc.is_monitor(0));
  EXPECT_FALSE(sc.is_monitor(3));
  EXPECT_DOUBLE_EQ(sc.config().thresholds.lower, 100.0);
  EXPECT_DOUBLE_EQ(sc.config().thresholds.upper, 800.0);
  EXPECT_DOUBLE_EQ(sc.config().per_path_cap_ms, 2000.0);
}

TEST(Scenario, MetricsRespectConfigRange) {
  Rng rng(72);
  ScenarioConfig cfg;
  cfg.delay_min_ms = 5.0;
  cfg.delay_max_ms = 6.0;
  Scenario sc = Scenario::fig1(rng, cfg);
  for (double x : sc.x_true()) {
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 6.0);
  }
}

TEST(Scenario, ResampleChangesMetrics) {
  Rng rng(73);
  Scenario sc = Scenario::fig1(rng);
  const Vector before = sc.x_true();
  sc.resample_metrics(rng);
  EXPECT_FALSE(approx_equal(before, sc.x_true(), 1e-12));
}

TEST(Scenario, CleanMeasurementsConsistent) {
  Rng rng(74);
  Scenario sc = Scenario::fig1(rng);
  const Vector y = sc.clean_measurements();
  EXPECT_TRUE(approx_equal(y, path_metrics(sc.estimator().paths(), sc.x_true()),
                           1e-12));
  EXPECT_TRUE(approx_equal(sc.estimator().estimate(y), sc.x_true(), 1e-7));
}

TEST(Scenario, ContextBorrowsScenarioState) {
  Rng rng(75);
  Scenario sc = Scenario::fig1(rng);
  AttackContext ctx = sc.context({4, 5});
  EXPECT_EQ(ctx.graph, &sc.graph());
  EXPECT_EQ(ctx.estimator, &sc.estimator());
  EXPECT_TRUE(approx_equal(ctx.x_true, sc.x_true(), 0.0));
  EXPECT_EQ(ctx.attackers, (std::vector<NodeId>{4, 5}));
  EXPECT_DOUBLE_EQ(ctx.per_path_cap, 2000.0);
}

TEST(Scenario, FromGraphProducesIdentifiableSystem) {
  Rng rng(76);
  auto sc = Scenario::from_graph(complete(7), rng);
  ASSERT_TRUE(sc.has_value());
  EXPECT_TRUE(sc->estimator().ok());
  EXPECT_GT(sc->estimator().num_paths(), sc->estimator().num_links());
  EXPECT_TRUE(approx_equal(sc->estimator().estimate(sc->clean_measurements()),
                           sc->x_true(), 1e-7));
}

TEST(Scenario, FromGraphHonorsRedundantPaths) {
  Rng rng(77);
  auto sc = Scenario::from_graph(complete(6), rng, ScenarioConfig{}, 10);
  ASSERT_TRUE(sc.has_value());
  EXPECT_GE(sc->estimator().num_paths(), sc->estimator().num_links() + 8);
}

TEST(Scenario, DeterministicGivenSeed) {
  Rng a(99), b(99);
  Scenario sa = Scenario::fig1(a);
  Scenario sb = Scenario::fig1(b);
  EXPECT_TRUE(approx_equal(sa.x_true(), sb.x_true(), 0.0));
}

}  // namespace
}  // namespace scapegoat
