// Round-trip and robustness tests for scenario persistence.

#include "core/scenario_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "attack/chosen_victim.hpp"
#include "topology/example_networks.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

void expect_equivalent(const Scenario& a, const Scenario& b) {
  EXPECT_EQ(a.graph().num_nodes(), b.graph().num_nodes());
  ASSERT_EQ(a.graph().num_links(), b.graph().num_links());
  for (LinkId l = 0; l < a.graph().num_links(); ++l) {
    EXPECT_EQ(a.graph().link(l).u, b.graph().link(l).u);
    EXPECT_EQ(a.graph().link(l).v, b.graph().link(l).v);
  }
  EXPECT_EQ(a.monitors(), b.monitors());
  ASSERT_EQ(a.estimator().num_paths(), b.estimator().num_paths());
  for (std::size_t i = 0; i < a.estimator().num_paths(); ++i) {
    EXPECT_EQ(a.estimator().paths()[i].nodes, b.estimator().paths()[i].nodes);
    EXPECT_EQ(a.estimator().paths()[i].links, b.estimator().paths()[i].links);
  }
  EXPECT_TRUE(approx_equal(a.x_true(), b.x_true(), 0.0));
  EXPECT_DOUBLE_EQ(a.config().per_path_cap_ms, b.config().per_path_cap_ms);
  EXPECT_DOUBLE_EQ(a.config().thresholds.lower, b.config().thresholds.lower);
}

TEST(ScenarioIo, Fig1RoundTrip) {
  Rng rng(301);
  Scenario original = Scenario::fig1(rng);
  std::stringstream buffer;
  save_scenario(buffer, original);
  auto loaded = load_scenario(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equivalent(original, *loaded);
}

TEST(ScenarioIo, RandomTopologyRoundTrip) {
  Rng rng(302);
  auto original = Scenario::from_graph(erdos_renyi(20, 0.25, rng), rng);
  ASSERT_TRUE(original.has_value());
  std::stringstream buffer;
  save_scenario(buffer, *original);
  auto loaded = load_scenario(buffer);
  ASSERT_TRUE(loaded.has_value());
  expect_equivalent(*original, *loaded);
}

TEST(ScenarioIo, AttacksAgreeAfterRoundTrip) {
  Rng rng(303);
  Scenario original = Scenario::fig1(rng);
  std::stringstream buffer;
  save_scenario(buffer, original);
  auto loaded = load_scenario(buffer);
  ASSERT_TRUE(loaded.has_value());

  const ExampleNetwork net = fig1_network();
  const AttackResult a =
      chosen_victim_attack(original.context(net.attackers), {9});
  const AttackResult b =
      chosen_victim_attack(loaded->context(net.attackers), {9});
  ASSERT_EQ(a.success, b.success);
  EXPECT_NEAR(a.damage, b.damage, 1e-9);
  EXPECT_TRUE(approx_equal(a.x_estimated, b.x_estimated, 1e-9));
}

TEST(ScenarioIo, CommentsAndBlankLinesTolerated) {
  Rng rng(304);
  Scenario original = Scenario::fig1(rng);
  std::stringstream buffer;
  buffer << "# a comment\n\n";
  save_scenario(buffer, original);
  buffer << "\n# trailing comment\n";
  auto loaded = load_scenario(buffer);
  ASSERT_TRUE(loaded.has_value());
}

TEST(ScenarioIo, RejectsGarbage) {
  std::istringstream empty("");
  EXPECT_FALSE(load_scenario(empty).has_value());
  std::istringstream wrong_magic("other-format 1\n");
  EXPECT_FALSE(load_scenario(wrong_magic).has_value());
  std::istringstream wrong_version("scapegoat-scenario 99\n");
  EXPECT_FALSE(load_scenario(wrong_version).has_value());
  std::istringstream truncated("scapegoat-scenario 1\nnodes 5\n");
  EXPECT_FALSE(load_scenario(truncated).has_value());
}

TEST(ScenarioIo, RejectsPathOverMissingLink) {
  std::istringstream bad(
      "scapegoat-scenario 1\n"
      "nodes 3\n"
      "links 2\n"
      "0 1\n"
      "1 2\n"
      "monitors 2\n"
      "0 2\n"
      "paths 1\n"
      "2 0 2\n"  // nodes 0-2 are not adjacent
      "metrics 2\n"
      "1.0 2.0\n"
      "config 1 20 100 800 2000 1\n");
  EXPECT_FALSE(load_scenario(bad).has_value());
}

TEST(ScenarioIo, RejectsUnidentifiableSavedSystem) {
  // Structurally valid but only one path: rank 1 < 2.
  std::istringstream bad(
      "scapegoat-scenario 1\n"
      "nodes 3\n"
      "links 2\n"
      "0 1\n"
      "1 2\n"
      "monitors 2\n"
      "0 2\n"
      "paths 1\n"
      "3 0 1 2\n"
      "metrics 2\n"
      "1.0 2.0\n"
      "config 1 20 100 800 2000 1\n");
  EXPECT_FALSE(load_scenario(bad).has_value());
}

TEST(ScenarioIoChecked, DiagnosticsNameTheFailure) {
  std::istringstream empty("");
  auto e = try_load_scenario(empty);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.code(), robust::ErrorCode::kParseError);

  std::istringstream truncated(
      "scapegoat-scenario 1\nnodes 3\nlinks 2\n0 1\n");
  auto t = try_load_scenario(truncated);
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.code(), robust::ErrorCode::kParseError);
  EXPECT_NE(t.error().message.find("link"), std::string::npos);
}

TEST(ScenarioIoChecked, ImplausibleCountsDoNotAllocate) {
  // A corrupted header demanding ~10^18 nodes must come back as a typed
  // error, not an allocation attempt.
  std::istringstream huge_nodes(
      "scapegoat-scenario 1\nnodes 999999999999999999\n");
  auto n = try_load_scenario(huge_nodes);
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.code(), robust::ErrorCode::kInvalidInput);

  std::istringstream huge_paths(
      "scapegoat-scenario 1\n"
      "nodes 2\nlinks 1\n0 1\nmonitors 2\n0 1\n"
      "paths 888888888888\n");
  auto p = try_load_scenario(huge_paths);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.code(), robust::ErrorCode::kInvalidInput);

  std::istringstream huge_path_len(
      "scapegoat-scenario 1\n"
      "nodes 2\nlinks 1\n0 1\nmonitors 2\n0 1\n"
      "paths 1\n777777777 0 1\n");
  auto l = try_load_scenario(huge_path_len);
  ASSERT_FALSE(l.ok());
  EXPECT_EQ(l.code(), robust::ErrorCode::kInvalidInput);
}

TEST(ScenarioIoChecked, MetricCountMismatchIsTyped) {
  std::istringstream bad(
      "scapegoat-scenario 1\n"
      "nodes 3\nlinks 2\n0 1\n1 2\nmonitors 2\n0 2\n"
      "paths 1\n3 0 1 2\n"
      "metrics 5\n"  // five metrics for two links
      "1 2 3 4 5\n"
      "config 1 20 100 800 2000 1\n");
  auto e = try_load_scenario(bad);
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.code(), robust::ErrorCode::kDimensionMismatch);
}

TEST(ScenarioIoChecked, MissingFileIsIoError) {
  auto e = try_load_scenario_file("/nonexistent/scenario.txt");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.code(), robust::ErrorCode::kIoError);
}

TEST(ScenarioIoChecked, RoundTripStillSucceeds) {
  Rng rng(306);
  Scenario original = Scenario::fig1(rng);
  std::stringstream buffer;
  save_scenario(buffer, original);
  auto loaded = try_load_scenario(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  expect_equivalent(original, *loaded);
}

TEST(ScenarioIo, MulticastMleConfigRoundTrips) {
  // The MLE defender's clamp floor rides as an optional third token on the
  // estimator line; both the kind and the floor must survive persistence.
  ScenarioConfig config;
  config.estimator_kind = EstimatorKind::kMulticastMle;
  config.mle_min_rate = 1e-4;
  Rng rng(307);
  Scenario original = Scenario::fig1(rng, config);
  std::stringstream buffer;
  save_scenario(buffer, original);
  const std::string text = buffer.str();
  EXPECT_NE(text.find("estimator multicast_mle"), std::string::npos);
  auto loaded = try_load_scenario(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded->config().estimator_kind, EstimatorKind::kMulticastMle);
  EXPECT_DOUBLE_EQ(loaded->config().mle_min_rate, 1e-4);
  expect_equivalent(original, *loaded);
}

TEST(ScenarioIo, TwoTokenEstimatorLineKeepsTheDefaultClampFloor) {
  // Files written before the MLE floor existed (or by other estimator
  // kinds) carry two tokens; the loader must keep the default floor.
  Rng rng(308);
  Scenario base = Scenario::fig1(rng);
  std::stringstream buffer;
  save_scenario(buffer, base);
  std::string text = buffer.str();
  text += "estimator multicast_mle 0\n";
  std::istringstream patched(text);
  auto loaded = try_load_scenario(patched);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  EXPECT_EQ(loaded->config().estimator_kind, EstimatorKind::kMulticastMle);
  EXPECT_DOUBLE_EQ(loaded->config().mle_min_rate,
                   ScenarioConfig{}.mle_min_rate);
}

TEST(ScenarioIo, FileHelpers) {
  EXPECT_FALSE(load_scenario_file("/nonexistent/scenario.txt").has_value());
  Rng rng(305);
  Scenario original = Scenario::fig1(rng);
  const std::string path = "/tmp/scapegoat_scenario_io_test.txt";
  ASSERT_TRUE(save_scenario_file(path, original));
  auto loaded = load_scenario_file(path);
  ASSERT_TRUE(loaded.has_value());
  expect_equivalent(original, *loaded);
}

}  // namespace
}  // namespace scapegoat
