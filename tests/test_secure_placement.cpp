// Tests for the §VI security-aware path selection extension.

#include "tomography/secure_placement.hpp"

#include <gtest/gtest.h>

#include "tomography/monitor_placement.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/generators.hpp"

namespace scapegoat {
namespace {

std::vector<NodeId> all_nodes(const Graph& g) {
  std::vector<NodeId> v(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) v[i] = i;
  return v;
}

TEST(PresenceRatios, CountsPathMembership) {
  Graph g(4);
  LinkId a = *g.add_link(0, 1);
  LinkId b = *g.add_link(1, 2);
  *g.add_link(2, 3);
  Path p1;
  p1.nodes = {0, 1, 2};
  p1.links = {a, b};
  Path p2;
  p2.nodes = {0, 1};
  p2.links = {a};
  const auto ratios = node_presence_ratios(g, {p1, p2});
  EXPECT_DOUBLE_EQ(ratios[0], 1.0);  // on both paths
  EXPECT_DOUBLE_EQ(ratios[1], 1.0);
  EXPECT_DOUBLE_EQ(ratios[2], 0.5);
  EXPECT_DOUBLE_EQ(ratios[3], 0.0);
  EXPECT_DOUBLE_EQ(max_presence_ratio(g, {p1, p2}), 1.0);
}

TEST(PresenceRatios, EmptyPathSetIsZero) {
  Graph g = ring(4);
  const auto ratios = node_presence_ratios(g, {});
  for (double r : ratios) EXPECT_DOUBLE_EQ(r, 0.0);
  EXPECT_DOUBLE_EQ(max_presence_ratio(g, {}), 0.0);
}

TEST(SecureSelection, ReachesIdentifiability) {
  Graph g = complete(7);
  Rng rng(201);
  SecureSelectionOptions opt;
  opt.base.redundant_paths = 5;
  const PathSelectionResult res =
      secure_select_paths(g, all_nodes(g), opt, rng);
  EXPECT_TRUE(res.identifiable);
  EXPECT_TRUE(is_identifiable(routing_matrix(g, res.paths)));
  EXPECT_GT(res.paths.size(), g.num_links());
}

TEST(SecureSelection, PathsAreValidAndDeduplicated) {
  Graph g = grid(3, 4);
  Rng rng(202);
  SecureSelectionOptions opt;
  opt.base.redundant_paths = 6;
  const PathSelectionResult res =
      secure_select_paths(g, all_nodes(g), opt, rng);
  ASSERT_TRUE(res.identifiable);
  std::set<std::vector<LinkId>> seen;
  for (Path p : res.paths) {
    EXPECT_TRUE(is_valid_simple_path(g, p));
    std::sort(p.links.begin(), p.links.end());
    EXPECT_TRUE(seen.insert(p.links).second);
  }
}

TEST(SecureSelection, LowersExposureVersusBaselineOnAverage) {
  // On a hub topology the baseline tends to route everything through the
  // hubs; the secure policy must not be WORSE on max presence ratio.
  Rng topo_rng(203);
  Graph g = barabasi_albert(40, 2, topo_rng);
  MonitorPlacementOptions mp;
  mp.path_options.redundant_paths = 6;
  Rng rng_a(204);
  const MonitorPlacementResult base = place_monitors(g, mp, rng_a);
  ASSERT_TRUE(base.identifiable);

  SecureSelectionOptions sopt;
  sopt.base.redundant_paths = 6;
  Rng rng_b(205);
  const PathSelectionResult secure =
      secure_select_paths(g, base.monitors, sopt, rng_b);
  ASSERT_TRUE(secure.identifiable);

  EXPECT_LE(max_presence_ratio(g, secure.paths),
            max_presence_ratio(g, base.paths) + 0.05);
}

}  // namespace
}  // namespace scapegoat
