// Streaming probe-ingest service suite (DESIGN.md §13): the pure shedding
// predicate, the bounded-queue admission ladder, the window-payload codec,
// end-to-end closed-loop sessions (honest vs attacked streams through the
// online Eq. 23 detector), shard-count invariance of the pinned shed set and
// of the window decisions, crash/wedge restart supervision, over-budget
// quarantine, journal resume with at-least-once redelivery, and — the
// satellite-3 contract — a SIGKILL'd service whose clean resume reproduces
// the uninterrupted window series bitwise.

#include "service/supervisor.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "robust/checkpoint.hpp"
#include "service/ingest_queue.hpp"
#include "service/session.hpp"
#include "simnet/load_gen.hpp"
#include "util/random.hpp"

// fork() + worker threads is undefined under TSan; the kill/resume test is
// compiled out there (the in-process crash/restart tests cover the same
// journal-resume logic).
#if defined(__SANITIZE_THREAD__)
#define SCAPEGOAT_NO_FORK_TESTS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SCAPEGOAT_NO_FORK_TESTS 1
#endif
#endif

namespace scapegoat::service {
namespace {

std::string tmp_journal(const std::string& name) {
  return ::testing::TempDir() + "service_test_" + name;
}

void remove_shard_journals(const std::string& path, std::size_t shards) {
  for (std::size_t k = 0; k < shards; ++k) {
    const std::string p = path + ".shard" + std::to_string(k);
    std::remove(p.c_str());
    std::remove((p + ".manifest").c_str());
  }
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

ProbeBatch make_batch(std::uint64_t id, std::uint32_t topology,
                      std::uint64_t seq, std::size_t width = 1) {
  ProbeBatch b;
  b.batch_id = id;
  b.topology = topology;
  b.seq = seq;
  b.y = Vector(width, 1.0);
  return b;
}

// Small deterministic closed-loop workload shared by the session tests;
// window == stride == 4 gives tumbling windows with an exact count.
SessionWorkload small_workload() {
  SessionWorkload w;
  w.kind = TopologyKind::kWireline;
  w.topologies = 2;
  w.scenario_seed = 7;
  w.load.seed = derive_seed(7, 0x10adull);
  w.load.batches_per_topology = 16;
  w.load.noise_ms = 1.0;
  w.producers = 1;
  w.closed_loop = true;
  return w;
}

ServiceOptions small_options() {
  ServiceOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 64;
  opt.high_water = 48;
  opt.window = 4;
  opt.stride = 4;
  opt.alpha_ms = 200.0;
  opt.seed = 7;
  opt.shed.seed = 7;
  opt.shed.mode = ShedPolicy::Mode::kOff;
  return opt;
}

void expect_same_decisions(const std::vector<WindowDecision>& a,
                           const std::vector<WindowDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].topology, b[i].topology);
    EXPECT_EQ(a[i].window_index, b[i].window_index);
    EXPECT_EQ(a[i].next_seq, b[i].next_seq);
    EXPECT_EQ(a[i].alarm, b[i].alarm);
    EXPECT_TRUE(bits_equal(a[i].mean_residual_ms, b[i].mean_residual_ms))
        << "window " << i;
    ASSERT_EQ(a[i].residuals.size(), b[i].residuals.size());
    for (std::size_t r = 0; r < a[i].residuals.size(); ++r)
      EXPECT_TRUE(bits_equal(a[i].residuals[r], b[i].residuals[r]))
          << "window " << i << " residual " << r;
  }
}

// ------------------------------------------------------ shed predicate ---

TEST(ShedPredicate, PureAndEdgeCases) {
  EXPECT_EQ(is_shed_candidate(42, 1000, 125), is_shed_candidate(42, 1000, 125));
  for (std::uint64_t id = 0; id < 64; ++id) {
    EXPECT_FALSE(is_shed_candidate(42, id, 0));
    EXPECT_TRUE(is_shed_candidate(42, id, 1000));
    EXPECT_TRUE(is_shed_candidate(42, id, 1500));
  }
}

TEST(ShedPredicate, FractionTracksPermilleAndSeedChangesTheSet) {
  const std::uint32_t permille = 125;
  std::size_t hits = 0;
  std::size_t differs = 0;
  const std::size_t n = 100'000;
  for (std::uint64_t id = 0; id < n; ++id) {
    const bool a = is_shed_candidate(7, id, permille);
    hits += a ? 1 : 0;
    differs += a != is_shed_candidate(8, id, permille) ? 1 : 0;
  }
  const double rate = static_cast<double>(hits) / static_cast<double>(n);
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.15);
  EXPECT_GT(differs, 0u);  // the seed really keys the candidate set
}

TEST(ShedPredicate, InterleavedBatchIdsAreDistinct) {
  // 3 topologies x 5 seqs tile the id space with no collisions.
  std::vector<std::uint64_t> ids;
  for (std::uint32_t t = 0; t < 3; ++t)
    for (std::uint64_t s = 0; s < 5; ++s)
      ids.push_back(interleaved_batch_id(t, s, 3));
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

// -------------------------------------------------------- window codec ---

TEST(WindowCodec, RoundTripsBitwise) {
  WindowDecision d;
  d.topology = 3;
  d.window_index = 17;
  d.next_seq = 144;
  d.mean_residual_ms = 0.1 + 0.2;  // not exactly 0.3: bit fidelity matters
  d.alarm = true;
  d.residuals = {1.5, -0.0, 5e-324, 1e308, 0.30000000000000004};

  const auto back = decode_window_payload(3, 17, encode_window_payload(d));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->topology, 3u);
  EXPECT_EQ(back->window_index, 17u);
  EXPECT_EQ(back->next_seq, 144u);
  EXPECT_TRUE(back->alarm);
  EXPECT_TRUE(bits_equal(back->mean_residual_ms, d.mean_residual_ms));
  ASSERT_EQ(back->residuals.size(), d.residuals.size());
  for (std::size_t i = 0; i < d.residuals.size(); ++i)
    EXPECT_TRUE(bits_equal(back->residuals[i], d.residuals[i]));
}

TEST(WindowCodec, RejectsMalformedPayloads) {
  EXPECT_FALSE(decode_window_payload(0, 0, "").has_value());
  EXPECT_FALSE(decode_window_payload(0, 0, "s=zz;a=1;m=0;r=0").has_value());
  EXPECT_FALSE(decode_window_payload(
                   0, 0, "s=0000000000000001;a=2;m=3ff0000000000000;r=")
                   .has_value());
  // An empty residual list cannot restore a sliding window.
  EXPECT_FALSE(decode_window_payload(
                   0, 0,
                   "s=0000000000000001;a=0;m=3ff0000000000000;r=")
                   .has_value());
}

// --------------------------------------------------------- ingest queue ---

TEST(IngestQueue, AdmitsUntilHighWaterThenRejectsWithHint) {
  IngestQueueOptions opt;
  opt.capacity = 4;
  opt.high_water = 2;
  opt.retry_after_base_ms = 5.0;
  IngestQueue q(opt);

  EXPECT_EQ(q.offer(make_batch(0, 0, 0)).outcome, Admission::kAdmitted);
  EXPECT_EQ(q.offer(make_batch(1, 0, 1)).outcome, Admission::kAdmitted);
  const AdmitResult rejected = q.offer(make_batch(2, 0, 2));
  EXPECT_EQ(rejected.outcome, Admission::kRejected);
  EXPECT_DOUBLE_EQ(rejected.retry_after_ms, 5.0);  // at the high-water mark
  EXPECT_EQ(q.depth(), 2u);

  // Draining one slot re-opens admission; FIFO order is preserved.
  const auto popped = q.pop_wait();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->batch_id, 0u);
  EXPECT_EQ(q.offer(make_batch(2, 0, 2)).outcome, Admission::kAdmitted);
  EXPECT_EQ(q.max_depth(), 2u);
}

TEST(IngestQueue, HardLimitShedsCandidatesUnderAutoOnly) {
  IngestQueueOptions opt;
  opt.capacity = 2;
  opt.high_water = 2;  // hard limit == backpressure threshold
  opt.retry_after_base_ms = 5.0;
  opt.shed.mode = ShedPolicy::Mode::kAuto;
  opt.shed.permille = 1000;  // every id is a candidate
  IngestQueue q(opt);
  EXPECT_EQ(q.offer(make_batch(0, 0, 0)).outcome, Admission::kAdmitted);
  EXPECT_EQ(q.offer(make_batch(1, 0, 1)).outcome, Admission::kAdmitted);
  EXPECT_EQ(q.offer(make_batch(2, 0, 2)).outcome, Admission::kShed);

  // Same full queue without the auto policy: max-hint backpressure instead.
  IngestQueueOptions off = opt;
  off.shed.mode = ShedPolicy::Mode::kOff;
  IngestQueue q2(off);
  EXPECT_EQ(q2.offer(make_batch(0, 0, 0)).outcome, Admission::kAdmitted);
  EXPECT_EQ(q2.offer(make_batch(1, 0, 1)).outcome, Admission::kAdmitted);
  const AdmitResult full = q2.offer(make_batch(2, 0, 2));
  EXPECT_EQ(full.outcome, Admission::kRejected);
  EXPECT_DOUBLE_EQ(full.retry_after_ms, 10.0);  // 2x base at capacity
}

TEST(IngestQueue, CloseStopsAdmissionsButDrainsTheBacklog) {
  IngestQueueOptions opt;
  opt.capacity = 4;
  opt.high_water = 4;
  IngestQueue q(opt);
  EXPECT_EQ(q.offer(make_batch(0, 0, 0)).outcome, Admission::kAdmitted);
  EXPECT_EQ(q.offer(make_batch(1, 0, 1)).outcome, Admission::kAdmitted);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.offer(make_batch(2, 0, 2)).outcome, Admission::kClosed);
  EXPECT_EQ(q.pop_wait()->batch_id, 0u);
  EXPECT_EQ(q.pop_wait()->batch_id, 1u);
  EXPECT_FALSE(q.pop_wait().has_value());  // closed and drained
}

TEST(IngestQueue, AbortingPopWaitWakesWithoutConsuming) {
  IngestQueueOptions opt;
  opt.capacity = 4;
  IngestQueue q(opt);
  EXPECT_EQ(q.offer(make_batch(0, 0, 0)).outcome, Admission::kAdmitted);
  std::atomic<bool> abort{true};
  // The abort flag wins even with work queued: the supervisor's kill path
  // must not have to wait for the backlog.
  EXPECT_FALSE(q.pop_wait(abort).has_value());
  EXPECT_EQ(q.depth(), 1u);
}

// ------------------------------------------------------------- sessions ---

TEST(ServiceSession, HonestStreamDrainsExactlyAndStaysQuiet) {
  const SessionWorkload w = small_workload();
  const ServiceOptions opt = small_options();
  const auto report = run_service_session(w, opt);
  ASSERT_TRUE(report.ok()) << report.error_message();

  const ServiceStats& s = report.value().stats;
  EXPECT_EQ(report.value().final_state, ServiceState::kStopped);
  EXPECT_FALSE(report.value().interrupted);
  // Closed loop, queue never saturated: everything offered was admitted and
  // every admitted batch was absorbed.
  EXPECT_EQ(s.offered, 32u);
  EXPECT_EQ(s.admitted, 32u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.processed, 32u);
  EXPECT_EQ(s.lost_in_flight(), 0u);
  EXPECT_EQ(s.restarts, 0u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.malformed, 0u);
  // 16 batches through tumbling windows of 4: exactly 4 windows each.
  ASSERT_EQ(report.value().windows_by_topology.size(), 2u);
  for (const auto& windows : report.value().windows_by_topology) {
    EXPECT_EQ(windows.size(), 4u);
    for (const WindowDecision& d : windows) {
      EXPECT_FALSE(d.alarm);  // honest jitter stays far under alpha
      EXPECT_LT(d.mean_residual_ms, opt.alpha_ms);
    }
  }
  EXPECT_EQ(s.windows, 8u);
  EXPECT_EQ(s.alarms, 0u);
}

TEST(ServiceSession, AttackedStreamRaisesWindowAlarms) {
  SessionWorkload w = small_workload();
  w.load.attack_every = 4;  // one inconsistent batch per tumbling window
  w.load.attack_delay_ms = 800.0;
  const auto report = run_service_session(w, small_options());
  ASSERT_TRUE(report.ok()) << report.error_message();
  EXPECT_EQ(report.value().stats.processed, 32u);
  EXPECT_GT(report.value().stats.alarms, 0u);
  // The detector fires on the attacked stream and not on the honest one
  // (previous test) — the online form of the paper's detectability result.
}

TEST(ServiceSession, MidStreamPathGrowthKeepsWidthsConsistent) {
  SessionWorkload w = small_workload();
  w.load.growth.every = 4;
  w.load.growth.max_extra = 2;
  ServiceOptions opt = small_options();
  opt.growth = w.load.growth;
  const auto report = run_service_session(w, opt);
  ASSERT_TRUE(report.ok()) << report.error_message();
  const ServiceStats& s = report.value().stats;
  // The generator and the shard derive the same width for every seq, so
  // growth never produces a malformed batch.
  EXPECT_EQ(s.malformed, 0u);
  EXPECT_EQ(s.processed, 32u);
  EXPECT_EQ(s.lost_in_flight(), 0u);
}

TEST(ServiceSession, PinnedShedSetIsShardCountInvariant) {
  SessionWorkload w = small_workload();
  ServiceOptions opt = small_options();
  opt.shed.mode = ShedPolicy::Mode::kPinned;
  opt.shed.permille = 250;

  // The candidate set is a pure function of (seed, permille) over the ids.
  std::vector<std::uint64_t> expected;
  for (std::uint32_t t = 0; t < w.topologies; ++t)
    for (std::uint64_t seq = 0; seq < w.load.batches_per_topology; ++seq) {
      const std::uint64_t id = interleaved_batch_id(t, seq, w.topologies);
      if (is_shed_candidate(opt.shed.seed, id, opt.shed.permille))
        expected.push_back(id);
    }
  std::sort(expected.begin(), expected.end());
  ASSERT_GT(expected.size(), 0u);

  std::vector<SessionReport> reports;
  for (std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    ServiceOptions o = opt;
    o.shards = shards;
    SessionWorkload wl = w;
    wl.producers = shards == 1 ? 1 : 2;  // vary the producer count too
    auto report = run_service_session(wl, o);
    ASSERT_TRUE(report.ok()) << report.error_message();
    EXPECT_EQ(report.value().shed_ids, expected) << shards << " shards";
    const ServiceStats& s = report.value().stats;
    EXPECT_EQ(s.shed, expected.size());
    EXPECT_EQ(s.offered, s.admitted + s.rejected + s.shed + s.closed);
    EXPECT_EQ(s.lost_in_flight(), 0u);
    reports.push_back(std::move(report.value()));
  }
  // Same shed set => same surviving stream => identical decisions, bit for
  // bit, regardless of how the topologies were sharded.
  ASSERT_EQ(reports[0].windows_by_topology.size(),
            reports[1].windows_by_topology.size());
  for (std::size_t t = 0; t < reports[0].windows_by_topology.size(); ++t)
    expect_same_decisions(reports[0].windows_by_topology[t],
                          reports[1].windows_by_topology[t]);
}

// ---------------------------------------------------------- supervision ---

TEST(ServiceSupervision, CrashedShardRestartsFromItsJournal) {
  const std::string path = tmp_journal("crash.ckpt");
  remove_shard_journals(path, 1);

  SessionWorkload w = small_workload();
  ServiceOptions opt = small_options();
  opt.journal_path = path;
  opt.supervise_interval_ms = 1.0;
  // Crash mid-run: topology 0's 9th batch, after the first window flushed.
  opt.fault_plan.crash_on_batch = interleaved_batch_id(0, 8, w.topologies);

  const auto report = run_service_session(w, opt);
  ASSERT_TRUE(report.ok()) << report.error_message();
  const ServiceStats& s = report.value().stats;
  EXPECT_GE(s.restarts, 1u);
  EXPECT_EQ(report.value().final_state, ServiceState::kStopped);
  // Exactly the crashed batch was in flight; everything else is accounted.
  EXPECT_EQ(s.lost_in_flight(), 1u);
  EXPECT_GT(s.windows, 0u);
  EXPECT_EQ(s.offered, s.admitted + s.rejected + s.shed + s.closed);
  remove_shard_journals(path, 1);
}

TEST(ServiceSupervision, WedgedShardIsAbortedAndRestarted) {
  const std::string path = tmp_journal("wedge.ckpt");
  remove_shard_journals(path, 1);

  SessionWorkload w = small_workload();
  ServiceOptions opt = small_options();
  opt.journal_path = path;
  opt.supervise_interval_ms = 1.0;
  opt.wedge_timeout_ms = 40.0;
  // No batch budget: the stall can only end through the wedge detector.
  opt.batch_budget_ms = 0.0;
  opt.fault_plan.stall_on_batch = interleaved_batch_id(1, 6, w.topologies);

  const auto report = run_service_session(w, opt);
  ASSERT_TRUE(report.ok()) << report.error_message();
  const ServiceStats& s = report.value().stats;
  EXPECT_GE(s.restarts, 1u);
  EXPECT_EQ(s.quarantined, 0u);
  EXPECT_EQ(s.lost_in_flight(), 1u);  // the aborted batch
  EXPECT_EQ(report.value().final_state, ServiceState::kStopped);
  remove_shard_journals(path, 1);
}

TEST(ServiceSupervision, OverBudgetBatchIsQuarantinedNotRestarted) {
  const std::string path = tmp_journal("quarantine.ckpt");
  remove_shard_journals(path, 1);

  SessionWorkload w = small_workload();
  ServiceOptions opt = small_options();
  opt.journal_path = path;
  // A generous wedge timeout keeps the supervisor out of it: the batch
  // budget must be the channel that ends the stall.
  opt.wedge_timeout_ms = 10'000.0;
  opt.batch_budget_ms = 25.0;
  opt.fault_plan.stall_on_batch = interleaved_batch_id(0, 5, w.topologies);

  const auto report = run_service_session(w, opt);
  ASSERT_TRUE(report.ok()) << report.error_message();
  const ServiceStats& s = report.value().stats;
  EXPECT_EQ(s.quarantined, 1u);
  EXPECT_EQ(s.restarts, 0u);
  EXPECT_EQ(s.lost_in_flight(), 0u);  // quarantined batches are accounted

  // The quarantine record landed in the journal with the taxonomy code.
  const auto contents = robust::read_journal(path + ".shard0");
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents.value().quarantined.size(), 1u);
  const robust::QuarantineRecord& rec =
      contents.value().quarantined.begin()->second;
  EXPECT_EQ(rec.family, "q0");
  EXPECT_EQ(rec.index, 5u);
  EXPECT_EQ(rec.code, robust::ErrorCode::kIterationLimit);
  remove_shard_journals(path, 1);
}

TEST(ServiceSupervision, ResumedSessionRestoresWindowsAndExtendsThem) {
  const std::string path = tmp_journal("resume.ckpt");
  remove_shard_journals(path, 1);

  SessionWorkload w = small_workload();
  w.load.batches_per_topology = 12;
  ServiceOptions opt = small_options();
  opt.journal_path = path;
  const auto first = run_service_session(w, opt);
  ASSERT_TRUE(first.ok()) << first.error_message();
  ASSERT_EQ(first.value().windows_by_topology[0].size(), 3u);

  // Same workload, resumed: the ack cursors are already at the end, so the
  // producers offer nothing and the decisions are purely journal-restored.
  ServiceOptions resume = opt;
  resume.resume = true;
  const auto replay = run_service_session(w, resume);
  ASSERT_TRUE(replay.ok()) << replay.error_message();
  EXPECT_EQ(replay.value().stats.offered, 0u);
  for (std::size_t t = 0; t < w.topologies; ++t)
    expect_same_decisions(first.value().windows_by_topology[t],
                          replay.value().windows_by_topology[t]);

  // A longer resumed run redelivers from the cursor and extends the series;
  // the overlap stays bitwise identical.
  SessionWorkload longer = w;
  longer.load.batches_per_topology = 16;
  const auto extended = run_service_session(longer, resume);
  ASSERT_TRUE(extended.ok()) << extended.error_message();
  for (std::size_t t = 0; t < w.topologies; ++t) {
    const auto& ext = extended.value().windows_by_topology[t];
    ASSERT_EQ(ext.size(), 4u);
    expect_same_decisions(
        first.value().windows_by_topology[t],
        {ext.begin(), ext.begin() + 3});
  }
  remove_shard_journals(path, 1);
}

#if !defined(SCAPEGOAT_NO_FORK_TESTS)
TEST(ServiceSupervision, SigkilledServiceResumesToIdenticalWindows) {
  SessionWorkload w = small_workload();
  w.load.batches_per_topology = 48;
  ServiceOptions opt = small_options();

  // Uninterrupted reference run, no journal involved.
  const auto baseline = run_service_session(w, opt);
  ASSERT_TRUE(baseline.ok()) << baseline.error_message();
  ASSERT_EQ(baseline.value().windows_by_topology[0].size(), 12u);

  const std::string path = tmp_journal("sigkill.ckpt");
  remove_shard_journals(path, 1);
  ServiceOptions killed = opt;
  killed.journal_path = path;
  killed.resume = true;

  // SIGKILL whole service processes at staggered points; each later child
  // resumes whatever journal state (possibly a torn tail) the previous one
  // left behind.
  const useconds_t kill_after_us[] = {10'000, 30'000, 80'000};
  for (const useconds_t delay : kill_after_us) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: run the journaled session; _exit skips all cleanup so even a
      // child that finished looks like a crash to the parent.
      run_service_session(w, killed);
      _exit(0);
    }
    ::usleep(delay);
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  }

  // One clean resume completes the stream; the redelivered batches are
  // regenerated bit-identically by the pure load generator, so the window
  // series must equal the uninterrupted run's, alarm flags and residual bit
  // patterns included.
  const auto resumed = run_service_session(w, killed);
  ASSERT_TRUE(resumed.ok()) << resumed.error_message();
  EXPECT_FALSE(resumed.value().interrupted);
  EXPECT_EQ(resumed.value().stats.lost_in_flight(), 0u);
  for (std::size_t t = 0; t < w.topologies; ++t)
    expect_same_decisions(baseline.value().windows_by_topology[t],
                          resumed.value().windows_by_topology[t]);
  remove_shard_journals(path, 1);
}
#endif  // !SCAPEGOAT_NO_FORK_TESTS

}  // namespace
}  // namespace scapegoat::service
