// Tests for the packet-level simulator: event ordering, delay mechanics,
// adversary semantics, loss channel, and agreement with the algebraic
// y′ = y + m model.

#include "simnet/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/chosen_victim.hpp"
#include "core/scenario.hpp"
#include "core/simulate.hpp"
#include "detect/detector.hpp"
#include "tomography/routing_matrix.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat::simnet {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  Event a;
  a.time_ms = 5.0;
  a.packet = 1;
  Event b;
  b.time_ms = 2.0;
  b.packet = 2;
  Event c;
  c.time_ms = 5.0;
  c.packet = 3;  // same time as a, inserted later
  q.push(a);
  q.push(b);
  q.push(c);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.pop().packet, 2u);
  EXPECT_EQ(q.pop().packet, 1u);  // FIFO among ties
  EXPECT_EQ(q.pop().packet, 3u);
  EXPECT_TRUE(q.empty());
}

class SimnetFig1 : public ::testing::Test {
 protected:
  SimnetFig1() : rng_(7), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(SimnetFig1, HonestProbesMeasureExactPathMetrics) {
  Rng sim_rng(1);
  const Vector y_sim = simulate_honest_measurements(scenario_, sim_rng);
  const Vector y_alg = scenario_.clean_measurements();
  EXPECT_TRUE(approx_equal(y_sim, y_alg, 1e-9));
}

TEST_F(SimnetFig1, ManipulationAdversaryReproducesAlgebraicModel) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r = chosen_victim_attack(ctx, {9});
  ASSERT_TRUE(r.success);
  Rng sim_rng(2);
  const Vector y_sim = simulate_attack_measurements(
      scenario_, net_.attackers, r.m, sim_rng);
  // Packet-level measurement equals y + m exactly in the noiseless model.
  EXPECT_TRUE(approx_equal(y_sim, r.y_observed, 1e-9));

  // And feeding the SIMULATED measurements through tomography + detection
  // gives the same verdicts as the algebraic pipeline.
  const auto states =
      scenario_.estimator().classify(y_sim, scenario_.config().thresholds);
  EXPECT_EQ(states[9], LinkState::kAbnormal);
  EXPECT_TRUE(detect_scapegoating(scenario_.estimator(), y_sim).detected);
}

TEST_F(SimnetFig1, StealthyAttackStaysStealthyUnderSimulation) {
  AttackContext ctx = scenario_.context(net_.attackers);
  const AttackResult r =
      chosen_victim_attack(ctx, {0}, ManipulationMode::kConsistent);
  ASSERT_TRUE(r.success);
  Rng sim_rng(3);
  const Vector y_sim = simulate_attack_measurements(
      scenario_, net_.attackers, r.m, sim_rng);
  EXPECT_FALSE(detect_scapegoating(scenario_.estimator(), y_sim).detected);
}

TEST_F(SimnetFig1, AdversaryActsOnlyOncePerPacket) {
  // Paths crossing BOTH attackers (e.g. path 13: M1 A B C M3) must receive
  // m_i once, not twice.
  Vector m(scenario_.estimator().num_paths(), 0.0);
  m[12] = 500.0;  // path 13 traverses B and C
  Rng sim_rng(4);
  const Vector y_sim = simulate_attack_measurements(
      scenario_, net_.attackers, m, sim_rng);
  const Vector y = scenario_.clean_measurements();
  EXPECT_NEAR(y_sim[12] - y[12], 500.0, 1e-9);
}

TEST_F(SimnetFig1, UntouchedPathsSeeNoDelay) {
  Vector m(scenario_.estimator().num_paths(), 250.0);
  Rng sim_rng(5);
  const Vector y_sim = simulate_attack_measurements(
      scenario_, net_.attackers, m, sim_rng);
  const Vector y = scenario_.clean_measurements();
  // Path 17 has no attacker: the simulator enforces Constraint 1 physically
  // even though m[16] asked for 250 ms.
  EXPECT_NEAR(y_sim[16], y[16], 1e-9);
  // Every other path got its 250 ms.
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (i == 16) continue;
    EXPECT_NEAR(y_sim[i] - y[i], 250.0, 1e-9) << "path " << i;
  }
}

TEST_F(SimnetFig1, FifoSerializationDelaysBackToBackProbes) {
  NullAdversary nobody;
  Rng sim_rng(6);
  auto models = link_models(scenario_, /*service_ms=*/5.0);
  Simulator sim(scenario_.graph(), models, nobody, sim_rng);
  ProbeOptions opt;
  opt.probes_per_path = 3;
  opt.probe_spacing_ms = 0.0;  // all probes burst at t=0
  // Single-path run to isolate the FIFO effect.
  std::vector<Path> one_path{scenario_.estimator().paths()[16]};  // 2 links
  const ProbeRun run = sim.run_probes(one_path, opt);
  ASSERT_EQ(run.per_path[0].delivered, 3u);
  // Probe k waits k extra service slots at the first link: delays are
  // base+5, base+10, base+15 → mean = base + 10 where base includes one
  // service time per hop... each hop adds 5ms service for the head probe
  // too. Just assert the mean exceeds the zero-service case.
  Rng rng2(6);
  Simulator sim0(scenario_.graph(), link_models(scenario_, 0.0), nobody, rng2);
  const ProbeRun run0 = sim0.run_probes(one_path, opt);
  EXPECT_GT(run.per_path[0].mean_delay_ms(),
            run0.per_path[0].mean_delay_ms() + 10.0 - 1e-9);
}

TEST_F(SimnetFig1, JitterRaisesDelaysBoundedly) {
  NullAdversary nobody;
  Rng sim_rng(8);
  Simulator sim(scenario_.graph(), link_models(scenario_), nobody, sim_rng);
  ProbeOptions opt;
  opt.jitter_ms = 3.0;
  const ProbeRun run = sim.run_probes(scenario_.estimator().paths(), opt);
  const Vector y = scenario_.clean_measurements();
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = run.per_path[i].mean_delay_ms() - y[i];
    EXPECT_GE(d, 0.0);
    // At most 3 ms per hop.
    EXPECT_LE(d, 3.0 * scenario_.estimator().paths()[i].length() + 1e-9);
  }
}

TEST_F(SimnetFig1, DropAdversaryReducesDelivery) {
  std::vector<double> drop(scenario_.estimator().num_paths(), 0.0);
  drop[0] = 1.0;  // kill every probe of path 1
  DropAdversary adversary(net_.attackers, drop);
  Rng sim_rng(9);
  Simulator sim(scenario_.graph(), link_models(scenario_), adversary, sim_rng);
  ProbeOptions opt;
  opt.probes_per_path = 10;
  const ProbeRun run = sim.run_probes(scenario_.estimator().paths(), opt);
  EXPECT_EQ(run.per_path[0].delivered, 0u);
  EXPECT_EQ(run.per_path[0].sent, 10u);
  // Path 17 (no attacker) delivers everything.
  EXPECT_EQ(run.per_path[16].delivered, 10u);
}

TEST_F(SimnetFig1, LossChannelMatchesLogAdditiveModel) {
  // Per-link delivery 0.9: a k-hop path delivers with prob 0.9^k, so the
  // loss metric −log(ratio) ≈ k·(−log 0.9). Statistical test with a
  // generous tolerance.
  NullAdversary nobody;
  Rng sim_rng(10);
  Simulator sim(scenario_.graph(), link_models(scenario_), nobody, sim_rng);
  ProbeOptions opt;
  opt.probes_per_path = 4000;
  opt.probe_spacing_ms = 0.0;
  opt.link_delivery_prob.assign(scenario_.graph().num_links(), 0.9);
  std::vector<Path> two_paths{scenario_.estimator().paths()[16],   // 2 hops
                              scenario_.estimator().paths()[2]};   // 4 hops
  const ProbeRun run = sim.run_probes(two_paths, opt);
  const Vector loss = run.loss_metrics();
  EXPECT_NEAR(loss[0], 2 * -std::log(0.9), 0.05);
  EXPECT_NEAR(loss[1], 4 * -std::log(0.9), 0.08);
}

TEST_F(SimnetFig1, CrossTrafficAddsQueueingDelay) {
  NullAdversary nobody;
  ProbeOptions opt;
  opt.probes_per_path = 4;
  opt.background_packets_per_link = 50;
  opt.background_window_ms = 50.0;

  // With zero service time, background packets are invisible.
  Rng rng_a(21);
  Simulator sim_free(scenario_.graph(), link_models(scenario_, 0.0), nobody,
                     rng_a);
  const Vector y_free =
      sim_free.run_probes(scenario_.estimator().paths(), opt).mean_delays();
  Vector y_repeated(scenario_.estimator().num_paths());
  {
    Rng rng_b(22);
    Simulator sim(scenario_.graph(), link_models(scenario_, 0.0), nobody,
                  rng_b);
    ProbeOptions no_bg = opt;
    no_bg.background_packets_per_link = 0;
    y_repeated = sim.run_probes(scenario_.estimator().paths(), no_bg)
                     .mean_delays();
  }
  EXPECT_TRUE(approx_equal(y_free, y_repeated, 1e-9));

  // With service time, congestion pushes delays up (or leaves them equal on
  // paths whose links saw no contention).
  Rng rng_c(23);
  Simulator sim_busy(scenario_.graph(), link_models(scenario_, 0.5), nobody,
                     rng_c);
  const Vector y_busy =
      sim_busy.run_probes(scenario_.estimator().paths(), opt).mean_delays();
  double total_extra = 0.0;
  for (std::size_t i = 0; i < y_busy.size(); ++i) {
    EXPECT_GE(y_busy[i], y_free[i] - 1e-9);
    total_extra += y_busy[i] - y_free[i];
  }
  EXPECT_GT(total_extra, 1.0);  // congestion was actually felt somewhere
}

TEST_F(SimnetFig1, EventCountIsAccountedFor) {
  NullAdversary nobody;
  Rng sim_rng(24);
  Simulator sim(scenario_.graph(), link_models(scenario_), nobody, sim_rng);
  ProbeOptions opt;
  opt.probes_per_path = 2;
  sim.run_probes(scenario_.estimator().paths(), opt);
  // Every probe spawns once and arrives once per hop: events = probes ×
  // (1 + hops).
  std::size_t expected = 0;
  for (const Path& p : scenario_.estimator().paths())
    expected += opt.probes_per_path * (1 + p.length());
  EXPECT_EQ(sim.events_processed(), expected);
}

TEST(SimnetAdversaries, MaliciousLookupIsBounded) {
  ManipulationAdversary adv({2, 5}, Vector(3, 100.0));
  EXPECT_TRUE(adv.is_malicious(2));
  EXPECT_TRUE(adv.is_malicious(5));
  EXPECT_FALSE(adv.is_malicious(4));
  EXPECT_FALSE(adv.is_malicious(1000));  // beyond the table: not malicious
  EXPECT_DOUBLE_EQ(adv.hold_ms(1), 100.0);
  EXPECT_DOUBLE_EQ(adv.hold_ms(99), 0.0);  // beyond m: no delay
}

}  // namespace
}  // namespace scapegoat::simnet
