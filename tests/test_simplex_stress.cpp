// Randomized stress battery for the simplex: mixed row senses, shifted and
// negative bounds, free variables — each optimum cross-checked by Monte
// Carlo feasible sampling (no sampled feasible point may beat the reported
// optimum) and by exact feasibility of the returned solution.

#include <gtest/gtest.h>

#include <algorithm>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "util/random.hpp"

namespace scapegoat::lp {
namespace {

// Random LP with box-bounded variables and mixed ≤ / ≥ / = rows anchored on
// a known feasible point so feasibility is guaranteed by construction.
struct AnchoredLp {
  Model model{Sense::kMaximize};
  std::vector<double> anchor;
};

AnchoredLp make_anchored_lp(Rng& rng) {
  AnchoredLp out;
  const std::size_t n = 2 + rng.index(4);
  out.anchor.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double lo = rng.uniform(-4.0, 1.0);
    const double hi = lo + rng.uniform(0.5, 5.0);
    out.anchor[j] = rng.uniform(lo, hi);
    out.model.add_variable(lo, hi, rng.uniform(-2.0, 2.0));
  }
  const std::size_t rows = 1 + rng.index(4);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    double at_anchor = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double c = rng.uniform(-1.5, 1.5);
      if (std::abs(c) < 0.1) continue;
      terms.push_back({j, c});
      at_anchor += c * out.anchor[j];
    }
    if (terms.empty()) continue;
    // Pick a sense and an rhs that keeps the anchor feasible.
    switch (rng.uniform_int(0, 2)) {
      case 0:
        out.model.add_constraint(std::move(terms), RowType::kLessEqual,
                                 at_anchor + rng.uniform(0.0, 2.0));
        break;
      case 1:
        out.model.add_constraint(std::move(terms), RowType::kGreaterEqual,
                                 at_anchor - rng.uniform(0.0, 2.0));
        break;
      default:
        out.model.add_constraint(std::move(terms), RowType::kEqual,
                                 at_anchor);
        break;
    }
  }
  return out;
}

class SimplexStress : public ::testing::TestWithParam<int> {};

TEST_P(SimplexStress, AnchoredProblemsSolveToVerifiedOptima) {
  Rng rng(static_cast<std::uint64_t>(9000 + GetParam()));
  for (int instance = 0; instance < 10; ++instance) {
    AnchoredLp lp = make_anchored_lp(rng);
    ASSERT_LE(lp.model.max_violation(lp.anchor), 1e-9);

    const Solution s = solve(lp.model);
    ASSERT_EQ(s.status, SolveStatus::kOptimal)
        << "anchored LP must be feasible";
    EXPECT_LE(lp.model.max_violation(s.x), 1e-6);
    EXPECT_NEAR(lp.model.objective_value(s.x), s.objective, 1e-7);
    // The anchor is feasible, so the optimum must be at least as good.
    EXPECT_GE(s.objective + 1e-7, lp.model.objective_value(lp.anchor));

    // Monte Carlo: random feasible perturbations of the anchor can't beat
    // the optimum.
    const std::size_t n = lp.model.num_variables();
    std::vector<double> x(n);
    for (int sample = 0; sample < 200; ++sample) {
      for (std::size_t j = 0; j < n; ++j) {
        const Variable& v = lp.model.variable(j);
        x[j] = std::clamp(lp.anchor[j] + rng.uniform(-1.0, 1.0), v.lower,
                          v.upper);
      }
      if (lp.model.max_violation(x) > 1e-9) continue;
      EXPECT_LE(lp.model.objective_value(x), s.objective + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexStress, ::testing::Range(0, 12));

TEST(SimplexStress, LargeAttackShapedProblem) {
  // 300 variables, 120 dense rows — comfortably larger than any LP the
  // experiments produce; must stay optimal and feasible.
  Rng rng(424242);
  Model m(Sense::kMaximize);
  const std::size_t vars = 300, rows = 120;
  for (std::size_t j = 0; j < vars; ++j) m.add_variable(0.0, 2000.0, 1.0);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<Term> terms;
    for (std::size_t j = 0; j < vars; ++j) {
      const double c = rng.uniform(-0.1, 0.3);
      if (std::abs(c) > 0.03) terms.push_back({j, c});
    }
    m.add_constraint(std::move(terms), RowType::kLessEqual,
                     rng.uniform(100.0, 2000.0));
  }
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(m.max_violation(s.x), 1e-5);
  EXPECT_GT(s.objective, 0.0);
}

TEST(SimplexStress, EqualityChainSystem) {
  // x1 = 1, x_{k+1} - x_k = 1 → x_k = k; maximize -x_n picks the forced
  // solution; any objective gives the same point (unique feasible).
  Model m(Sense::kMaximize);
  const std::size_t n = 20;
  for (std::size_t j = 0; j < n; ++j)
    m.add_variable(0.0, kInfinity, j + 1 == n ? -1.0 : 0.0);
  m.add_constraint({{0, 1.0}}, RowType::kEqual, 1.0);
  for (std::size_t j = 0; j + 1 < n; ++j)
    m.add_constraint({{j + 1, 1.0}, {j, -1.0}}, RowType::kEqual, 1.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  for (std::size_t j = 0; j < n; ++j)
    EXPECT_NEAR(s.x[j], static_cast<double>(j + 1), 1e-7);
}

TEST(SimplexStress, RedundantRowsDoNotConfusePhase1) {
  // The same equality three times: phase 1 must drive out artificials on
  // the redundant copies (or zero the rows) and still succeed.
  Model m(Sense::kMaximize);
  auto x = m.add_variable(0.0, kInfinity, 1.0);
  auto y = m.add_variable(0.0, kInfinity, 1.0);
  for (int rep = 0; rep < 3; ++rep)
    m.add_constraint({{x, 1.0}, {y, 1.0}}, RowType::kEqual, 4.0);
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

}  // namespace
}  // namespace scapegoat::lp
