// CSR SparseMatrix unit suite: construction edge cases (empty matrix,
// all-zero rows, single entry, duplicate-coordinate rejection), round-trips,
// slicing, SpMV vs the dense product (bitwise — the DESIGN.md §12 contract),
// CGLS against dense QR, and the backend-selection policy.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "graph/graph.hpp"
#include "linalg/backend.hpp"
#include "linalg/cgls.hpp"
#include "linalg/least_squares.hpp"
#include "linalg/sparse_matrix.hpp"
#include "tomography/routing_matrix.hpp"
#include "util/random.hpp"

namespace scapegoat {
namespace {

bool bitwise_equal(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i]))
      return false;
  }
  return true;
}

TEST(SparseMatrix, EmptyMatrixHasNoEntries) {
  const SparseMatrix s(0, 0);
  EXPECT_EQ(s.rows(), 0u);
  EXPECT_EQ(s.cols(), 0u);
  EXPECT_EQ(s.nnz(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.density(), 1.0);  // degenerate shapes count as dense

  const SparseMatrix wide(0, 5);
  EXPECT_TRUE(wide.empty());
  const Vector y = wide * Vector(5, 1.0);
  EXPECT_EQ(y.size(), 0u);
}

TEST(SparseMatrix, AllZeroRowsRoundTrip) {
  // Rows 0 and 2 are structurally empty; the CSR offsets must still cover
  // them and products must return exact zeros there.
  const SparseMatrix s =
      SparseMatrix::from_triplets(3, 4, {{1, 2, 5.0}, {1, 0, -1.0}});
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_EQ(s.row_nnz(0), 0u);
  EXPECT_EQ(s.row_nnz(1), 2u);
  EXPECT_EQ(s.row_nnz(2), 0u);
  const Matrix d = s.to_dense();
  EXPECT_EQ(d(1, 0), -1.0);
  EXPECT_EQ(d(1, 2), 5.0);
  EXPECT_EQ(d(0, 0), 0.0);
  const Vector y = s * Vector(4, 1.0);
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[1], 4.0);
  EXPECT_EQ(y[2], 0.0);
}

TEST(SparseMatrix, SingleEntry) {
  const SparseMatrix s = SparseMatrix::from_triplets(2, 3, {{1, 2, 7.0}});
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_EQ(s.at(1, 2), 7.0);
  EXPECT_EQ(s.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s.density(), 1.0 / 6.0);
}

TEST(SparseMatrix, AppendRowMatchesFromTripletsBitwise) {
  // Growing [2x3] by one row must leave CSR arrays identical to rebuilding
  // the [3x3] matrix from scratch — including an unsorted, zero-carrying
  // appended row.
  SparseMatrix grown =
      SparseMatrix::from_triplets(2, 3, {{0, 1, 2.5}, {1, 0, -1.0}});
  grown.append_row({2, 0, 1}, {4.0, 0.0, -3.0});  // unsorted + exact zero
  const SparseMatrix rebuilt = SparseMatrix::from_triplets(
      3, 3, {{0, 1, 2.5}, {1, 0, -1.0}, {2, 1, -3.0}, {2, 2, 4.0}});
  ASSERT_EQ(grown.rows(), rebuilt.rows());
  ASSERT_EQ(grown.nnz(), rebuilt.nnz());
  EXPECT_EQ(grown.col_index(), rebuilt.col_index());
  for (std::size_t r = 0; r < grown.rows(); ++r) {
    EXPECT_EQ(grown.row_begin(r), rebuilt.row_begin(r));
    EXPECT_EQ(grown.row_end(r), rebuilt.row_end(r));
  }
  for (std::size_t k = 0; k < grown.nnz(); ++k) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(grown.values()[k]),
              std::bit_cast<std::uint64_t>(rebuilt.values()[k]));
  }
  const Vector probe{1.0, -2.0, 0.5};
  EXPECT_TRUE(bitwise_equal(grown * probe, rebuilt * probe));
}

TEST(SparseMatrix, AppendRowCanBeStructurallyEmpty) {
  SparseMatrix s = SparseMatrix::from_triplets(1, 2, {{0, 0, 1.0}});
  ASSERT_TRUE(s.try_append_row({0, 1}, {0.0, 0.0}).ok());
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.nnz(), 1u);
  EXPECT_EQ(s.row_nnz(1), 0u);
  const Vector y = s * Vector(2, 3.0);
  EXPECT_EQ(y[1], 0.0);
}

TEST(SparseMatrix, AppendRowRejectionsLeaveMatrixUntouched) {
  SparseMatrix s = SparseMatrix::from_triplets(2, 3, {{0, 0, 1.0}, {1, 2, 2.0}});
  const std::size_t rows_before = s.rows();
  const std::size_t nnz_before = s.nnz();

  const auto dup = s.try_append_row({1, 1}, {1.0, 2.0});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), robust::ErrorCode::kInvalidInput);

  const auto oob = s.try_append_row({3}, {1.0});
  ASSERT_FALSE(oob.ok());
  EXPECT_EQ(oob.code(), robust::ErrorCode::kInvalidInput);

  const auto mismatch = s.try_append_row({0, 1}, {1.0});
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), robust::ErrorCode::kDimensionMismatch);

  EXPECT_EQ(s.rows(), rows_before);
  EXPECT_EQ(s.nnz(), nnz_before);

  SparseMatrix zero_width;
  const auto no_cols = zero_width.try_append_row({}, {});
  ASSERT_FALSE(no_cols.ok());
  EXPECT_EQ(no_cols.code(), robust::ErrorCode::kInvalidInput);
}

TEST(SparseMatrix, DuplicateCoordinatesRejected) {
  const auto dup = SparseMatrix::try_from_triplets(
      2, 2, {{0, 1, 1.0}, {1, 0, 2.0}, {0, 1, 3.0}});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), robust::ErrorCode::kInvalidInput);

  const auto oob = SparseMatrix::try_from_triplets(2, 2, {{2, 0, 1.0}});
  ASSERT_FALSE(oob.ok());
  EXPECT_EQ(oob.code(), robust::ErrorCode::kInvalidInput);
}

TEST(SparseMatrix, ExactZeroTripletsAreDropped) {
  const SparseMatrix s =
      SparseMatrix::from_triplets(2, 2, {{0, 0, 0.0}, {1, 1, 2.0}});
  EXPECT_EQ(s.nnz(), 1u);
  // A zero-valued triplet is dropped, so the same coordinate can also carry
  // a real value without tripping duplicate rejection.
  const auto mixed = SparseMatrix::try_from_triplets(
      2, 2, {{0, 0, 0.0}, {0, 0, 3.0}});
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->at(0, 0), 3.0);
}

TEST(SparseMatrix, UnsortedTripletsAreSortedPerRow) {
  const SparseMatrix s = SparseMatrix::from_triplets(
      1, 5, {{0, 4, 4.0}, {0, 0, 1.0}, {0, 2, 2.0}});
  ASSERT_EQ(s.nnz(), 3u);
  EXPECT_EQ(s.col_index()[0], 0u);
  EXPECT_EQ(s.col_index()[1], 2u);
  EXPECT_EQ(s.col_index()[2], 4u);
  EXPECT_EQ(s.values()[1], 2.0);
}

TEST(SparseMatrix, DenseRoundTripIsLossless) {
  Rng rng(17);
  Matrix a(7, 9);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (rng.uniform(0.0, 1.0) < 0.3) a(i, j) = rng.uniform(-4.0, 4.0);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  EXPECT_TRUE(approx_equal(s, a, 0.0));
  const Matrix back = s.to_dense();
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(back(i, j), a(i, j));
}

TEST(SparseMatrix, SpmvBitwiseEqualsDenseProduct) {
  // The load-bearing contract: CSR row accumulation visits stored entries in
  // column order, so skipping exact zeros cannot change a single bit of the
  // dense row dot product. Checked across random sparsities and magnitudes.
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t rows = 1 + rng.index(12);
    const std::size_t cols = 1 + rng.index(12);
    Matrix a(rows, cols);
    for (std::size_t i = 0; i < rows; ++i)
      for (std::size_t j = 0; j < cols; ++j)
        if (rng.uniform(0.0, 1.0) < 0.4)
          a(i, j) = rng.uniform(-1e6, 1e6) * std::pow(10.0, rng.index(6));
    Vector x(cols);
    for (std::size_t j = 0; j < cols; ++j) x[j] = rng.uniform(-1e3, 1e3);

    const SparseMatrix s = SparseMatrix::from_dense(a);
    EXPECT_TRUE(bitwise_equal(a * x, s * x)) << "trial " << trial;
  }
}

TEST(SparseMatrix, MultiplyTransposeMatchesDense) {
  Rng rng(5);
  Matrix a(6, 4);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      if (rng.uniform(0.0, 1.0) < 0.5) a(i, j) = rng.uniform(-2.0, 2.0);
  Vector y(6);
  for (std::size_t i = 0; i < 6; ++i) y[i] = rng.uniform(-3.0, 3.0);
  const SparseMatrix s = SparseMatrix::from_dense(a);
  const Vector lhs = s.multiply_transpose(y);
  const Vector rhs = a.transposed() * y;
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t j = 0; j < lhs.size(); ++j)
    EXPECT_NEAR(lhs[j], rhs[j], 1e-12);
  // transposed() must agree with the dense transpose exactly.
  EXPECT_TRUE(approx_equal(s.transposed(), a.transposed(), 0.0));
}

TEST(SparseMatrix, RowAndColumnSlicing) {
  const SparseMatrix s = SparseMatrix::from_triplets(
      3, 4, {{0, 0, 1.0}, {0, 3, 2.0}, {1, 1, 3.0}, {2, 2, 4.0}});
  const SparseMatrix rows = s.select_rows({2, 0});
  EXPECT_EQ(rows.rows(), 2u);
  EXPECT_EQ(rows.at(0, 2), 4.0);
  EXPECT_EQ(rows.at(1, 0), 1.0);
  EXPECT_EQ(rows.at(1, 3), 2.0);

  const SparseMatrix cols = s.select_cols({3, 1});
  EXPECT_EQ(cols.cols(), 2u);
  EXPECT_EQ(cols.at(0, 0), 2.0);
  EXPECT_EQ(cols.at(1, 1), 3.0);
  EXPECT_EQ(cols.nnz(), 2u);

  const Vector row1 = s.row_dense(1);
  EXPECT_EQ(row1[1], 3.0);
  EXPECT_EQ(row1.size(), 4u);
}

TEST(SparseRoutingMatrix, MatchesDenseConstruction) {
  // Triangle with a pendant node; paths over it exercise multi-link rows.
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 2);
  g.add_link(2, 3);
  const std::vector<Path> paths = {
      Path{{0, 1, 2}, {0, 1}},
      Path{{0, 2, 3}, {2, 3}},
      Path{{1, 2}, {1}},
  };
  const Matrix dense = routing_matrix(g, paths);
  const SparseMatrix sparse = sparse_routing_matrix(g, paths);
  EXPECT_TRUE(approx_equal(sparse, dense, 0.0));
  EXPECT_EQ(sparse.nnz(), 5u);
}

TEST(Cgls, MatchesQrOnFullRankSystem) {
  Rng rng(123);
  Matrix a(12, 5);
  for (std::size_t j = 0; j < 5; ++j) a(j, j) = 1.0;  // identity block
  for (std::size_t i = 5; i < 12; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      a(i, j) = rng.uniform(0.0, 1.0) < 0.5 ? 1.0 : 0.0;
  Vector b(12);
  for (std::size_t i = 0; i < 12; ++i) b[i] = rng.uniform(-5.0, 5.0);

  const auto x_qr = least_squares(a, b, LeastSquaresMethod::kQr);
  ASSERT_TRUE(x_qr.has_value());
  const CglsResult cg = cgls_solve(SparseMatrix::from_dense(a), b);
  ASSERT_TRUE(cg.converged);
  EXPECT_LE(cg.relative_residual, 1e-12);
  for (std::size_t j = 0; j < 5; ++j)
    EXPECT_NEAR(cg.x[j], (*x_qr)[j], 1e-8);
}

TEST(Cgls, ZeroRhsConvergesToZeroImmediately) {
  const SparseMatrix s = SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0},
                                                           {1, 1, 1.0}});
  const CglsResult cg = cgls_solve(s, Vector(2));
  EXPECT_TRUE(cg.converged);
  EXPECT_EQ(cg.iterations, 0u);
  EXPECT_EQ(cg.x[0], 0.0);
  EXPECT_EQ(cg.x[1], 0.0);
}

TEST(Cgls, LeastSquaresMethodRoutesThroughCgls) {
  Matrix a(3, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(2, 0) = 1.0;
  a(2, 1) = 1.0;
  const Vector b{1.0, 2.0, 3.0};
  const auto x_qr = least_squares(a, b, LeastSquaresMethod::kQr);
  const auto x_cg = least_squares(a, b, LeastSquaresMethod::kCgls);
  ASSERT_TRUE(x_qr.has_value());
  ASSERT_TRUE(x_cg.has_value());
  EXPECT_NEAR((*x_cg)[0], (*x_qr)[0], 1e-10);
  EXPECT_NEAR((*x_cg)[1], (*x_qr)[1], 1e-10);
}

TEST(BackendPolicy, AutoThresholdsOnSizeAndDensity) {
  const BackendPolicy policy;  // kAuto everywhere
  // Small matrix: dense products regardless of density.
  EXPECT_FALSE(policy.use_sparse_products(10, 10, 5));
  // Large and sparse: sparse products.
  EXPECT_TRUE(policy.use_sparse_products(512, 512, 2048));
  // Large but dense: stays dense.
  EXPECT_FALSE(policy.use_sparse_products(512, 512, 200000));
  // Solver threshold is much higher than the product threshold.
  EXPECT_FALSE(policy.use_iterative_solver(512, 512, 2048));
  EXPECT_TRUE(policy.use_iterative_solver(2048, 1024, 8192));
}

TEST(BackendPolicy, ExplicitPolicyPinsTheBackend) {
  BackendPolicy sparse;
  sparse.products = NumericBackend::kSparse;
  sparse.solver = NumericBackend::kSparse;
  EXPECT_TRUE(sparse.use_sparse_products(2, 2, 4));
  EXPECT_TRUE(sparse.use_iterative_solver(2, 2, 4));

  BackendPolicy dense;
  dense.products = NumericBackend::kDense;
  dense.solver = NumericBackend::kDense;
  EXPECT_FALSE(dense.use_sparse_products(4096, 4096, 10));
  EXPECT_FALSE(dense.use_iterative_solver(4096, 4096, 10));
}

TEST(BackendPolicy, ScopedOverrideBeatsInstancePolicyAndNests) {
  BackendPolicy dense;
  dense.products = NumericBackend::kDense;
  dense.solver = NumericBackend::kDense;
  EXPECT_FALSE(ScopedBackendOverride::products_override().has_value());
  {
    ScopedBackendOverride outer(NumericBackend::kSparse,
                                NumericBackend::kAuto);
    // products forced sparse; solver slot untouched (kAuto = no override).
    EXPECT_TRUE(dense.use_sparse_products(2, 2, 4));
    EXPECT_FALSE(dense.use_iterative_solver(2, 2, 4));
    {
      ScopedBackendOverride inner(NumericBackend::kDense,
                                  NumericBackend::kSparse);
      EXPECT_FALSE(dense.use_sparse_products(2, 2, 4));
      EXPECT_TRUE(dense.use_iterative_solver(2, 2, 4));
    }
    // Inner scope restored the outer override.
    EXPECT_TRUE(dense.use_sparse_products(2, 2, 4));
    EXPECT_FALSE(dense.use_iterative_solver(2, 2, 4));
  }
  EXPECT_FALSE(ScopedBackendOverride::products_override().has_value());
  EXPECT_FALSE(ScopedBackendOverride::solver_override().has_value());
}

}  // namespace
}  // namespace scapegoat
