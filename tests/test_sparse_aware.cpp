// Sparsity-aware scapegoating: the chosen-victim attack re-asked against a
// sparse-recovery defender with an ∞-ball tolerance ε (DESIGN.md §14).

#include "attack/sparse_aware.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/scenario.hpp"
#include "detect/detector.hpp"
#include "tomography/estimator.hpp"
#include "tomography/sparse_recovery.hpp"
#include "topology/example_networks.hpp"

namespace scapegoat {
namespace {

class SparseAwareTest : public ::testing::Test {
 protected:
  SparseAwareTest()
      : rng_(31), scenario_(Scenario::fig1(rng_)), net_(fig1_network()) {}

  Rng rng_;
  Scenario scenario_;
  ExampleNetwork net_;
};

TEST_F(SparseAwareTest, VictimControlledOverlapIsInfeasible) {
  // Eq. (7): a victim the attackers sit on cannot be framed.
  AttackContext ctx = scenario_.context(net_.attackers);
  const auto controlled = ctx.controlled_links();
  ASSERT_FALSE(controlled.empty());
  const AttackResult r = sparse_aware_attack(ctx, {controlled[0]});
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST_F(SparseAwareTest, AttackFramesTheVictimWithinTheBudget) {
  AttackContext ctx = scenario_.context(net_.attackers);
  SparseAwareOptions opt;
  opt.epsilon_ms = 10.0;
  const AttackResult r = sparse_aware_attack(ctx, {0}, opt);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.states[0], LinkState::kAbnormal);
  EXPECT_GT(r.damage, 0.0);
  // Constraint 1: manipulation only on attacker-traversed paths, m ⪰ 0.
  EXPECT_TRUE(satisfies_constraint1(ctx, r.m));
  for (const double mi : r.m) EXPECT_GE(mi, 0.0);
  // y′ is the true measurements plus the manipulation.
  const Vector y_true = ctx.true_measurements();
  for (std::size_t i = 0; i < y_true.size(); ++i)
    EXPECT_NEAR(r.y_observed[i], y_true[i] + r.m[i], 1e-9);
}

TEST_F(SparseAwareTest, StealthyAgainstTheMatchingSparseDefender) {
  // Attacker budget ε_att ≤ defender ball ε_def: every per-path discrepancy
  // the attack leaves is inside the defender's measurement model, so the
  // excess statistic stays at zero and the Eq. 23 detector cannot fire.
  SparseRecoveryOptions so;
  so.constraint = SparseConstraint::kInfBall;
  so.epsilon_ms = 10.0;
  so.prior = scenario_.x_true();
  const SparseRecoveryEstimator defender(scenario_.graph(),
                                         scenario_.estimator().paths(), so);
  AttackContext ctx = scenario_.context(net_.attackers);
  ctx.estimator = &defender;
  SparseAwareOptions opt;
  opt.epsilon_ms = 10.0;
  const AttackResult r = sparse_aware_attack(ctx, {0}, opt);
  ASSERT_TRUE(r.success);
  const DetectionOutcome out = detect_scapegoating(defender, r.y_observed);
  EXPECT_NEAR(out.residual_norm1, 0.0, 1e-6);
  EXPECT_FALSE(out.detected);
}

TEST_F(SparseAwareTest, ZeroEpsilonDegeneratesToTheConsistentAttack) {
  AttackContext ctx = scenario_.context(net_.attackers);
  SparseAwareOptions opt;
  opt.epsilon_ms = 0.0;
  const AttackResult r = sparse_aware_attack(ctx, {0}, opt);
  ASSERT_TRUE(r.success);
  // The forged target estimate explains y′ exactly: invisible even to the
  // least-squares defender (Theorem 3 all over again).
  const Vector reproduced = ctx.estimator->r() * r.x_estimated;
  for (std::size_t i = 0; i < reproduced.size(); ++i)
    EXPECT_NEAR(reproduced[i], r.y_observed[i], 1e-6) << "path " << i;
  const DetectionOutcome out =
      detect_scapegoating(scenario_.estimator(), r.y_observed);
  EXPECT_FALSE(out.detected);
}

TEST_F(SparseAwareTest, LeakageBudgetOnlyAddsDamage) {
  AttackContext ctx = scenario_.context(net_.attackers);
  SparseAwareOptions tight;
  tight.epsilon_ms = 0.0;
  SparseAwareOptions loose;
  loose.epsilon_ms = 50.0;
  const AttackResult a = sparse_aware_attack(ctx, {0}, tight);
  const AttackResult b = sparse_aware_attack(ctx, {0}, loose);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  // ε buys up to ε extra manipulation per controlled path, never less
  // total damage: the tight feasible set is contained in the loose one.
  EXPECT_GE(b.damage, a.damage - 1e-6);
}

TEST_F(SparseAwareTest, AttackerPathScopeIsTheTighterFeasibleSet) {
  // kAttackerPaths forces exact consistency on attacker-free paths, a
  // strict subset of the kAllPaths feasible set: same feasibility here,
  // and never more damage.
  AttackContext ctx = scenario_.context(net_.attackers);
  SparseAwareOptions tight;
  tight.epsilon_ms = 25.0;
  tight.scope = LeakageScope::kAttackerPaths;
  SparseAwareOptions loose = tight;
  loose.scope = LeakageScope::kAllPaths;
  const AttackResult a = sparse_aware_attack(ctx, {0}, tight);
  const AttackResult b = sparse_aware_attack(ctx, {0}, loose);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_GE(b.damage, a.damage - 1e-6);
}

TEST(SparseAwareNoAttackers, AttackIsInfeasible) {
  Rng rng(32);
  Scenario sc = Scenario::fig1(rng);
  AttackContext ctx = sc.context({});
  const AttackResult r = sparse_aware_attack(ctx, {0});
  EXPECT_FALSE(r.success);
}

}  // namespace
}  // namespace scapegoat
