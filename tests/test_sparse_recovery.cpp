// SparseRecoveryEstimator — the EstimatorKind::kSparseRecovery family:
// equality-mode agreement with least squares on identifiable systems,
// support recovery in the underdetermined (m < n) regime, the ∞-ball noise
// allowance, the Chebyshev auto-relaxation and the structured error
// taxonomy.

#include "tomography/sparse_recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "tomography/estimator.hpp"
#include "topology/generators.hpp"
#include "util/random.hpp"

namespace scapegoat {
namespace {

// Identifiable fixture: a wireline scenario (m > n, full column rank) with
// the sparse estimator's prior anchored at the true baseline metrics.
class SparseRecoveryIdentifiable : public ::testing::Test {
 protected:
  SparseRecoveryIdentifiable() : rng_(0x5137ull) {
    auto sc = make_scenario(TopologyKind::kWireline, rng_);
    if (!sc.has_value()) return;
    scenario_.emplace(std::move(*sc));
    SparseRecoveryOptions so;
    so.prior = scenario_->x_true();
    sparse_.emplace(scenario_->graph(), scenario_->estimator().paths(), so);
  }

  Vector planted_measurements(std::size_t k, Vector* x_out = nullptr) {
    Vector x = scenario_->x_true();
    const auto links = rng_.sample_without_replacement(x.size(), k);
    for (const std::size_t l : links) x[l] += 900.0;
    if (x_out != nullptr) *x_out = x;
    return scenario_->estimator().r() * x;
  }

  Rng rng_;
  std::optional<Scenario> scenario_;
  std::optional<SparseRecoveryEstimator> sparse_;
};

TEST_F(SparseRecoveryIdentifiable, EqualityModeMatchesLeastSquares) {
  ASSERT_TRUE(scenario_.has_value());
  // Consistent measurements on a full-column-rank R: the equality LP's
  // feasible set is the singleton R⁺y, so both families must coincide.
  for (const std::size_t k : {1u, 2u, 4u}) {
    const Vector y = planted_measurements(k);
    const auto rec = sparse_->recover(y);
    ASSERT_TRUE(rec.ok()) << rec.error_message();
    EXPECT_FALSE(rec->relaxed);
    const Vector x_ls = scenario_->estimator().estimate(y);
    for (std::size_t j = 0; j < x_ls.size(); ++j)
      EXPECT_NEAR(rec->x[j], x_ls[j], 1e-6) << "link " << j << " k " << k;
  }
}

TEST_F(SparseRecoveryIdentifiable, RecoversPlantedSupportExactly) {
  ASSERT_TRUE(scenario_.has_value());
  Vector x;
  const Vector y = planted_measurements(3, &x);
  std::vector<LinkId> want;
  for (LinkId l = 0; l < x.size(); ++l)
    if (x[l] > scenario_->x_true()[l] + 1.0) want.push_back(l);
  const auto rec = sparse_->recover(y);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->support, want);
}

TEST_F(SparseRecoveryIdentifiable, CleanMeasurementsRecoverThePrior) {
  ASSERT_TRUE(scenario_.has_value());
  const Vector y = scenario_->clean_measurements();
  const auto rec = sparse_->recover(y);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->support.empty());
  EXPECT_NEAR(rec->objective, 0.0, 1e-6);
  EXPECT_NEAR(sparse_->residual_statistic(y), 0.0, 1e-6);
}

TEST_F(SparseRecoveryIdentifiable, InfBallAbsorbsSubEpsilonNoise) {
  ASSERT_TRUE(scenario_.has_value());
  SparseRecoveryOptions so = sparse_->options();
  so.constraint = SparseConstraint::kInfBall;
  so.epsilon_ms = 10.0;
  const SparseRecoveryEstimator ball(scenario_->graph(),
                                     scenario_->estimator().paths(), so);
  Vector y = scenario_->clean_measurements();
  Rng jitter(0x7e57ull);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += jitter.uniform(0.0, 9.0);
  const auto rec = ball.recover(y);
  ASSERT_TRUE(rec.ok());
  // All discrepancies fit inside the ball: nothing to explain, no anomaly
  // support, zero excess statistic for the Eq. 23 detector.
  EXPECT_FALSE(rec->relaxed);
  EXPECT_TRUE(rec->support.empty()) << rec->support.size() << " spurious";
  EXPECT_NEAR(ball.residual_statistic(y), 0.0, 1e-9);
}

TEST_F(SparseRecoveryIdentifiable, AutoRelaxationStaysVisibleToDetector) {
  ASSERT_TRUE(scenario_.has_value());
  // Tampering one path of a redundant (m > n) system leaves y outside the
  // column space: the equality LP is infeasible, the Chebyshev fallback
  // relaxes to the minimal feasible ε*, and the excess statistic reports
  // the inconsistency instead of hiding it.
  Vector y = scenario_->clean_measurements();
  y[0] += 500.0;
  const auto rec = sparse_->recover(y);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->relaxed);
  EXPECT_GT(rec->epsilon_used, 0.0);
  EXPECT_GT(sparse_->residual_statistic(y), 0.0);
}

TEST_F(SparseRecoveryIdentifiable, RefusesInfeasibleWithoutAutoRelax) {
  ASSERT_TRUE(scenario_.has_value());
  SparseRecoveryOptions so = sparse_->options();
  so.auto_relax = false;
  const SparseRecoveryEstimator strict(scenario_->graph(),
                                       scenario_->estimator().paths(), so);
  Vector y = scenario_->clean_measurements();
  y[0] += 500.0;
  const auto rec = strict.recover(y);
  ASSERT_FALSE(rec.ok());
  EXPECT_EQ(rec.code(), robust::ErrorCode::kInvalidInput);
  // estimate() stays total regardless: it falls back to the prior.
  const Vector fallback = strict.estimate(y);
  for (std::size_t j = 0; j < fallback.size(); ++j)
    EXPECT_NEAR(fallback[j], strict.prior()[j], 1e-12);
}

TEST_F(SparseRecoveryIdentifiable, ErrorTaxonomyOnBadShapes) {
  ASSERT_TRUE(scenario_.has_value());
  const Vector short_y(scenario_->estimator().num_paths() - 1, 1.0);
  EXPECT_EQ(sparse_->recover(short_y).code(),
            robust::ErrorCode::kDimensionMismatch);
  EXPECT_EQ(sparse_->try_estimate(short_y).code(),
            robust::ErrorCode::kDimensionMismatch);

  SparseRecoveryOptions so;
  so.prior = Vector(3, 1.0);  // wrong width for this graph
  const SparseRecoveryEstimator bad(scenario_->graph(),
                                    scenario_->estimator().paths(), so);
  EXPECT_EQ(bad.recover(scenario_->clean_measurements()).code(),
            robust::ErrorCode::kDimensionMismatch);
}

TEST_F(SparseRecoveryIdentifiable, EstimateIsAlwaysNonnegative) {
  ASSERT_TRUE(scenario_.has_value());
  // Hostile measurements that drive the least-squares answer negative must
  // still come back ⪰ 0 from the sparse family (x ⪰ 0 is in its LP).
  Vector y = scenario_->clean_measurements();
  for (std::size_t i = 0; i < y.size(); i += 2) y[i] = 0.0;
  const Vector x = sparse_->estimate(y);
  for (std::size_t j = 0; j < x.size(); ++j)
    EXPECT_GE(x[j], -1e-9) << "link " << j;
}

// Underdetermined regime: 64 links measured by 32 random 8-link paths (the
// expander-style sensing density bench_sparse_recovery validates for exact
// k = 1 support recovery). Least squares refuses (rank-deficient); the ℓ1
// LP is the whole point here.
class SparseRecoveryUnderdetermined : public ::testing::Test {
 protected:
  SparseRecoveryUnderdetermined() : g_(ring(64)) {
    Rng rng(0xdecadeull);
    for (std::size_t i = 0; i < 32; ++i) {
      Path p;
      const auto picked = rng.sample_without_replacement(g_.num_links(), 8);
      p.links.assign(picked.begin(), picked.end());
      paths_.push_back(std::move(p));
    }
    SparseRecoveryOptions so;
    so.prior = Vector(g_.num_links(), 5.0);
    sparse_.emplace(g_, paths_, so);
  }

  Graph g_;
  std::vector<Path> paths_;
  std::optional<SparseRecoveryEstimator> sparse_;
};

TEST_F(SparseRecoveryUnderdetermined, LeastSquaresRefusesButRecoveryWorks) {
  const TomographyEstimator ls(g_, paths_);
  EXPECT_FALSE(ls.ok());
  EXPECT_FALSE(sparse_->ok());  // informational for this family

  // One planted anomaly on a measured link must be found exactly.
  Vector x = sparse_->prior();
  LinkId planted = paths_[0].links[0];
  x[planted] += 900.0;
  const auto rec = sparse_->recover(sparse_->r() * x);
  ASSERT_TRUE(rec.ok()) << rec.error_message();
  ASSERT_EQ(rec->support.size(), 1u);
  EXPECT_EQ(rec->support[0], planted);
  EXPECT_NEAR(rec->x[planted], x[planted], 1e-6);
}

TEST_F(SparseRecoveryUnderdetermined, CloneIsIndependentAndEquivalent) {
  Vector x = sparse_->prior();
  x[paths_[1].links[2]] += 400.0;
  const Vector y = sparse_->r() * x;
  const auto copy = sparse_->clone();
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->method(), EstimatorKind::kSparseRecovery);
  const Vector a = sparse_->estimate(y);
  const Vector b = copy->estimate(y);
  for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
}

}  // namespace
}  // namespace scapegoat
