// Self-tests for the property testkit itself: choice-tape record/replay
// determinism, shrinking combinators, env-knob parsing, seed-file round
// trips, and an end-to-end shrink demonstration on a deliberately wrong LP
// property (the machinery the acceptance criteria's mutation check relies
// on).

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "testkit/gen.hpp"
#include "testkit/runner.hpp"
#include "testkit/shrink.hpp"
#include "testkit/source.hpp"
#include "util/random.hpp"

namespace scapegoat::testkit {
namespace {

// Scoped env override restoring the previous value on destruction so these
// tests cannot leak knobs into the rest of the binary.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

// ---- Source ---------------------------------------------------------------

TEST(Source, RecordingIsSeedDeterministic) {
  Source a(42), b(42), c(43);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t bound = 1 + static_cast<std::uint64_t>(i) * 7;
    EXPECT_EQ(a.choice(bound), b.choice(bound));
    (void)c.choice(bound);
  }
  EXPECT_EQ(a.tape(), b.tape());
  EXPECT_NE(a.tape(), c.tape());  // astronomically unlikely to collide
}

TEST(Source, ReplayReproducesRecordedDraws) {
  Source rec(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.push_back(rec.choice(100));
  const double g = rec.grid(0.5, 10);
  const bool m = rec.maybe(0.31);
  const auto picks = rec.distinct_indices(9, 4);

  Source rep(rec.tape());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(rep.choice(100), values[i]);
  EXPECT_EQ(rep.grid(0.5, 10), g);
  EXPECT_EQ(rep.maybe(0.31), m);
  EXPECT_EQ(rep.distinct_indices(9, 4), picks);
  EXPECT_FALSE(rep.exhausted());
  EXPECT_EQ(rep.choices_made(), rec.choices_made());
}

TEST(Source, ReplayClampsOutOfRangeAndDefaultsToZeroWhenExhausted) {
  Source rep(std::vector<std::uint64_t>{500, 3});
  EXPECT_EQ(rep.choice(10), 10u);  // clamped to the bound
  EXPECT_EQ(rep.choice(10), 3u);
  EXPECT_FALSE(rep.exhausted());
  EXPECT_EQ(rep.choice(10), 0u);  // off the end: simplest answer
  EXPECT_TRUE(rep.exhausted());
}

TEST(Source, GridDecodesZigZag) {
  // Tape values 0,1,2,3,4 ↦ 0, +step, -step, +2·step, -2·step.
  Source rep(std::vector<std::uint64_t>{0, 1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(rep.grid(0.5, 8), 0.0);
  EXPECT_DOUBLE_EQ(rep.grid(0.5, 8), 0.5);
  EXPECT_DOUBLE_EQ(rep.grid(0.5, 8), -0.5);
  EXPECT_DOUBLE_EQ(rep.grid(0.5, 8), 1.0);
  EXPECT_DOUBLE_EQ(rep.grid(0.5, 8), -1.0);
}

TEST(Source, DistinctIndicesAreDistinctAndInRange) {
  Source src(99);
  for (int round = 0; round < 20; ++round) {
    const auto picks = src.distinct_indices(13, 5);
    ASSERT_EQ(picks.size(), 5u);
    for (std::size_t i = 0; i < picks.size(); ++i) {
      EXPECT_LT(picks[i], 13u);
      for (std::size_t j = i + 1; j < picks.size(); ++j)
        EXPECT_NE(picks[i], picks[j]);
    }
  }
}

TEST(Source, MaybeHonorsDegenerateProbabilities) {
  Source src(1);
  EXPECT_FALSE(src.maybe(0.0));
  EXPECT_TRUE(src.maybe(1.0));
  // Degenerate probabilities consume no tape: replayability requires the
  // choice count to be a pure function of the generator calls.
  EXPECT_EQ(src.choices_made(), 0u);
}

TEST(Source, GeneratedInstancesAreTapePureFunctions) {
  // The shrinker contract: decoding the same tape twice yields the same
  // instance, for the heaviest generator we have.
  Source rec(0xfeedface);
  const lp::Model m1 = gen_lp_model(rec);
  Source rep(rec.tape());
  const lp::Model m2 = gen_lp_model(rep);
  EXPECT_EQ(lp::to_string(m1), lp::to_string(m2));
}

// ---- shrink_tape ----------------------------------------------------------

TEST(Shrink, ScalarDescentFindsBoundary) {
  // "Fails" iff the first choice decodes to >= 100: minimal counterexample
  // is exactly [100].
  const auto still_fails = [](const std::vector<std::uint64_t>& tape) {
    Source rep(tape);
    return rep.choice(100000) >= 100;
  };
  const auto shrunk =
      shrink_tape({734, 20, 5, 9}, still_fails, 2000);
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0], 100u);
}

TEST(Shrink, DeletesIrrelevantStructure) {
  // Fails iff ANY decoded element equals 7; everything else is noise the
  // deletion pass should drop. Minimal tape: the single [7].
  const auto still_fails = [](const std::vector<std::uint64_t>& tape) {
    Source rep(tape);
    const std::size_t n = static_cast<std::size_t>(rep.choice(16));
    bool hit = false;
    for (std::size_t i = 0; i < n; ++i) hit |= (rep.choice(50) == 7);
    return hit;
  };
  std::vector<std::uint64_t> tape = {12, 3, 9, 7, 31, 2, 44, 7, 1, 5, 8, 6, 7};
  ASSERT_TRUE(still_fails(tape));
  ShrinkStats stats;
  const auto shrunk = shrink_tape(tape, still_fails, 4000, &stats);
  ASSERT_TRUE(still_fails(shrunk));
  // Minimal form is [1, 7] (count 1, one element equal to 7).
  ASSERT_EQ(shrunk.size(), 2u);
  EXPECT_EQ(shrunk[0], 1u);
  EXPECT_EQ(shrunk[1], 7u);
  EXPECT_GT(stats.improvements, 0u);
  EXPECT_LE(stats.evaluations, 4000u);
}

TEST(Shrink, ResultAlwaysSatisfiesPredicate) {
  // Awkward predicate (parity + position dependent): whatever the passes do,
  // the result must still fail the property.
  const auto still_fails = [](const std::vector<std::uint64_t>& tape) {
    Source rep(tape);
    const std::uint64_t a = rep.choice(63);
    const std::uint64_t b = rep.choice(63);
    return ((a + 2 * b) % 5) == 3;
  };
  std::vector<std::uint64_t> tape = {13, 10, 44, 3};
  ASSERT_TRUE(still_fails(tape));
  const auto shrunk = shrink_tape(tape, still_fails, 500);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_LE(shrunk.size(), tape.size());
}

TEST(Shrink, WrongLpPropertyShrinksToStructuralMinimum) {
  // Deliberately wrong invariant — "every generated LP has at most 2
  // variables" — stands in for a simplex mutation: the shrinker must walk a
  // large random model down to the structural boundary (exactly 3 variables,
  // no constraints). This is the mechanism that turns a pivot-rule bug into
  // a ≤6-var, ≤6-constraint counterexample.
  const auto still_fails = [](const std::vector<std::uint64_t>& tape) {
    Source rep(tape);
    return gen_lp_model(rep).num_variables() > 2;
  };
  // Find a failing recording first (most models have ≥3 of 1..6 variables).
  std::vector<std::uint64_t> tape;
  for (std::uint64_t seed = 1; tape.empty(); ++seed) {
    Source rec(seed);
    if (gen_lp_model(rec).num_variables() > 2) tape = rec.tape();
  }
  const auto shrunk = shrink_tape(tape, still_fails, 4000);
  Source rep(shrunk);
  const lp::Model m = gen_lp_model(rep);
  EXPECT_EQ(m.num_variables(), 3u);
  EXPECT_EQ(m.num_constraints(), 0u);
  // Structural minimum: one surviving choice (nv = 1 + 2), trailing zeros
  // trimmed.
  ASSERT_EQ(shrunk.size(), 1u);
  EXPECT_EQ(shrunk[0], 2u);
}

// ---- runner + env knobs ---------------------------------------------------

TEST(Runner, PassingPropertyRunsAllIterations) {
  PropertyConfig cfg;
  cfg.iterations = 25;
  const auto out =
      check_property("always_true", [](Source&) { return true; }, cfg);
  EXPECT_TRUE(out.passed);
  EXPECT_FALSE(out.skipped);
  EXPECT_EQ(out.iterations, 25u);
}

TEST(Runner, ZeroIterationsSkipsCleanly) {
  PropertyConfig cfg;
  cfg.iterations = 0;
  const auto out =
      check_property("never_run", [](Source&) { return false; }, cfg);
  EXPECT_TRUE(out.skipped);
  EXPECT_TRUE(out.passed);  // a skip is not a failure
  EXPECT_EQ(out.iterations, 0u);
}

TEST(Runner, FailureShrinksJournalsAndReplaysBitwise) {
  const Property property = [](Source& src) {
    src.note("witness note");
    return src.choice(1000) < 200;
  };
  PropertyConfig cfg;
  cfg.iterations = 200;
  cfg.corpus_out_dir = ::testing::TempDir();
  const auto out = check_property("demo_failure", property, cfg);
  ASSERT_FALSE(out.passed);
  EXPECT_FALSE(out.original_tape.empty());
  // Shrunk to the boundary counterexample.
  ASSERT_EQ(out.shrunk_tape.size(), 1u);
  EXPECT_EQ(out.shrunk_tape[0], 200u);
  ASSERT_EQ(out.notes.size(), 1u);
  EXPECT_EQ(out.notes[0], "witness note");
  EXPECT_NE(out.report().find("SCAPEGOAT_PROP_SEED="), std::string::npos);

  // The journal parses back to the same seed and tape.
  ASSERT_FALSE(out.seed_file.empty());
  const auto sf = load_seed_file(out.seed_file);
  ASSERT_TRUE(sf.has_value());
  EXPECT_EQ(sf->property, "demo_failure");
  EXPECT_EQ(sf->seed, out.failing_seed);
  EXPECT_EQ(sf->tape, out.shrunk_tape);

  // Replaying the journaled seed reproduces the identical case, bit for bit
  // — the SCAPEGOAT_PROP_SEED contract.
  PropertyConfig replay_cfg;
  replay_cfg.replay_seed = out.failing_seed;
  replay_cfg.corpus_out_dir = ::testing::TempDir();
  const auto replay = check_property("demo_failure", property, replay_cfg);
  EXPECT_FALSE(replay.passed);
  EXPECT_EQ(replay.iterations, 1u);
  EXPECT_EQ(replay.failing_seed, out.failing_seed);
  EXPECT_EQ(replay.original_tape, out.original_tape);
  EXPECT_EQ(replay.shrunk_tape, out.shrunk_tape);
}

TEST(Runner, ReplaySeedOverridesZeroIterations) {
  // Corpus replays must run even under SCAPEGOAT_PROP_ITERS=0.
  PropertyConfig cfg;
  cfg.iterations = 0;
  cfg.replay_seed = 1234;
  cfg.corpus_out_dir = ::testing::TempDir();
  const auto out =
      check_property("replay_only", [](Source&) { return true; }, cfg);
  EXPECT_FALSE(out.skipped);
  EXPECT_EQ(out.iterations, 1u);
  EXPECT_TRUE(out.passed);
}

TEST(Runner, CaseSeedsUseDeriveSeed) {
  // Case i is seeded with derive_seed(base_seed, i): check that the first
  // failing case's seed is exactly that, so SCAPEGOAT_PROP_SEED can target
  // any case, not just case 0.
  std::size_t calls = 0;
  const Property fail_third = [&calls](Source& src) {
    (void)src.choice(10);
    return ++calls != 3;  // cases 1, 2 pass; case 3 fails
  };
  PropertyConfig cfg;
  cfg.iterations = 10;
  cfg.base_seed = 0xabcdef;
  cfg.corpus_out_dir = ::testing::TempDir();
  const auto out = check_property("fail_third", fail_third, cfg);
  ASSERT_FALSE(out.passed);
  EXPECT_EQ(out.failing_seed, derive_seed(0xabcdef, 2));
}

TEST(Runner, ThrowingPropertyIsAFailure) {
  PropertyConfig cfg;
  cfg.iterations = 3;
  cfg.corpus_out_dir = ::testing::TempDir();
  const auto out = check_property(
      "throws",
      [](Source& src) -> bool {
        (void)src.choice(5);
        throw std::runtime_error("boom");
      },
      cfg);
  EXPECT_FALSE(out.passed);
}

TEST(Runner, FromEnvParsesKnobs) {
  {
    ScopedEnv iters("SCAPEGOAT_PROP_ITERS", "77");
    ScopedEnv seed("SCAPEGOAT_PROP_SEED", "0xdead");
    ScopedEnv corpus("SCAPEGOAT_PROP_CORPUS", "/tmp/corpus-test");
    const PropertyConfig cfg = PropertyConfig::from_env(200);
    EXPECT_EQ(cfg.iterations, 77u);
    EXPECT_TRUE(cfg.env_iterations);
    ASSERT_TRUE(cfg.replay_seed.has_value());
    EXPECT_EQ(*cfg.replay_seed, 0xdeadu);
    EXPECT_EQ(cfg.corpus_out_dir, "/tmp/corpus-test");
  }
  {
    ScopedEnv iters("SCAPEGOAT_PROP_ITERS", nullptr);
    ScopedEnv seed("SCAPEGOAT_PROP_SEED", nullptr);
    const PropertyConfig cfg = PropertyConfig::from_env(200);
    EXPECT_EQ(cfg.iterations, 200u);
    EXPECT_FALSE(cfg.env_iterations);
    EXPECT_FALSE(cfg.replay_seed.has_value());
  }
  {
    // Garbage is ignored, not fatal: CI wrappers may export junk.
    ScopedEnv iters("SCAPEGOAT_PROP_ITERS", "soon");
    const PropertyConfig cfg = PropertyConfig::from_env(200);
    EXPECT_EQ(cfg.iterations, 200u);
    EXPECT_FALSE(cfg.env_iterations);
  }
}

TEST(Runner, ScaledDividesEnvBudgetsButNeverToZero) {
  PropertyConfig cfg;
  cfg.iterations = 200;
  EXPECT_EQ(cfg.scaled(5).iterations, 40u);
  EXPECT_EQ(cfg.scaled(1).iterations, 200u);
  cfg.iterations = 3;
  EXPECT_EQ(cfg.scaled(25).iterations, 1u);  // floor at one case
  cfg.iterations = 0;
  EXPECT_EQ(cfg.scaled(25).iterations, 0u);  // 0 stays a skip
}

// ---- seed files -----------------------------------------------------------

TEST(SeedFiles, EncodeParseRoundTrip) {
  SeedFile sf;
  sf.property = "lp_simplex_matches_reference";
  sf.seed = 0x5ca9e90a7ull;
  sf.tape = {3, 0, 17, 9999};
  sf.notes = {"model: max | x0 in [0,1]", "second note"};
  const auto parsed = parse_seed_file(encode_seed_file(sf));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->property, sf.property);
  EXPECT_EQ(parsed->seed, sf.seed);
  EXPECT_EQ(parsed->tape, sf.tape);
  EXPECT_EQ(parsed->notes, sf.notes);
}

TEST(SeedFiles, ParserRejectsMalformedInput) {
  EXPECT_FALSE(parse_seed_file("").has_value());
  EXPECT_FALSE(parse_seed_file("property x\n").has_value());  // missing seed
  EXPECT_FALSE(parse_seed_file("seed 0x10\n").has_value());   // no property
  EXPECT_FALSE(
      parse_seed_file("property x\nseed 0x10\nbogus key\n").has_value());
  EXPECT_FALSE(
      parse_seed_file("property x\nseed notanumber\n").has_value());
  EXPECT_FALSE(
      parse_seed_file("property x\nseed 0x10\ntape 1,zz,3\n").has_value());
}

TEST(SeedFiles, ParserToleratesCommentsAndBlankLines) {
  const auto parsed = parse_seed_file(
      "# header comment\n\nproperty p\n# interior\nseed 16\ntape 1,2\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->property, "p");
  EXPECT_EQ(parsed->seed, 16u);
  EXPECT_EQ(parsed->tape, (std::vector<std::uint64_t>{1, 2}));
}

}  // namespace
}  // namespace scapegoat::testkit
