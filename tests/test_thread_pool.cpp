// Unit tests for util/thread_pool: task completion via futures, exception
// propagation out of workers, parallel_for index coverage (every index
// exactly once, any grain), nested/inline execution, and drain-on-destroy
// with queued work.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace scapegoat {
namespace {

TEST(ThreadPool, SubmitReturnsTaskResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SubmitVoidTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.submit([&ran] { ++ran; });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("worker boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool stays usable after a task threw.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 3,
                        [](std::size_t lo, std::size_t) {
                          if (lo >= 30) throw std::logic_error("chunk boom");
                        }),
      std::logic_error);
  // Still usable afterwards.
  std::atomic<std::size_t> count{0};
  pool.parallel_for_each(0, 10, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{3}, std::size_t{7},
                            std::size_t{64}, std::size_t{1000}}) {
    constexpr std::size_t kBegin = 5, kEnd = 777;
    std::vector<std::atomic<int>> hits(kEnd);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(kBegin, kEnd, grain,
                      [&](std::size_t lo, std::size_t hi) {
                        ASSERT_LE(lo, hi);
                        for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                      });
    for (std::size_t i = 0; i < kEnd; ++i)
      EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << "index " << i
                                                     << " grain " << grain;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleIndexRanges) {
  ThreadPool pool(3);
  std::atomic<std::size_t> count{0};
  pool.parallel_for_each(10, 10, 4, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0u);
  pool.parallel_for_each(10, 11, 4, [&](std::size_t i) {
    EXPECT_EQ(i, 10u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1u);
  // grain 0 is treated as 1.
  pool.parallel_for_each(0, 5, 0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 6u);
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(0, 100, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    for (std::size_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t outer = lo; outer < hi; ++outer) {
      // Nested call from a worker thread must execute inline (serially).
      pool.parallel_for_each(outer * 8, (outer + 1) * 8, 2,
                             [&](std::size_t i) { ++hits[i]; });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, OnWorkerThreadIsScopedToThePool) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_TRUE(pool.submit([&pool] { return pool.on_worker_thread(); }).get());
  ThreadPool other(2);
  EXPECT_FALSE(other.submit([&pool] { return pool.on_worker_thread(); }).get());
}

TEST(ThreadPool, DestructionDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
    // Destructor joins only after every queued task has executed.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, GlobalPoolResizes) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3u);
  EXPECT_EQ(ThreadPool::global_threads(), 3u);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().size(), 1u);
  ThreadPool::set_global_threads(0);  // back to hardware default
  EXPECT_GE(ThreadPool::global_threads(), 1u);
}

}  // namespace
}  // namespace scapegoat
