// Tests for the topology generators (ER, grid, ring, BA, RGG, ISP).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/traversal.hpp"
#include "topology/generators.hpp"
#include "topology/geometric.hpp"
#include "topology/isp.hpp"

namespace scapegoat {
namespace {

TEST(Generators, GridShape) {
  Graph g = grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // links = rows*(cols-1) + cols*(rows-1) = 3*3 + 4*2 = 17
  EXPECT_EQ(g.num_links(), 17u);
  EXPECT_TRUE(is_connected(g));
  // Corner degree 2, interior degree 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(Generators, RingShape) {
  Graph g = ring(7);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_links(), 7u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Generators, CompleteShape) {
  Graph g = complete(6);
  EXPECT_EQ(g.num_links(), 15u);
  for (NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, ErdosRenyiConnectedAndSized) {
  Rng rng(101);
  Graph g = erdos_renyi(40, 0.15, rng);
  EXPECT_EQ(g.num_nodes(), 40u);
  EXPECT_TRUE(is_connected(g));
  // Expected edges ≈ p·n(n-1)/2 = 117; allow a wide band.
  EXPECT_GT(g.num_links(), 60u);
  EXPECT_LT(g.num_links(), 200u);
}

TEST(Generators, ErdosRenyiLowPStillConnectedViaFallback) {
  Rng rng(102);
  Graph g = erdos_renyi(30, 0.01, rng, true, 3);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BarabasiAlbertShapeAndHubs) {
  Rng rng(103);
  const std::size_t n = 60, m = 2;
  Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_nodes(), n);
  EXPECT_TRUE(is_connected(g));
  // Every new node adds m links (duplicates suppressed rarely reduce this).
  EXPECT_GE(g.num_links(), (m + 1) * m / 2 + (n - m - 1) * m - 5);
  // Heavy tail: max degree well above the mean.
  std::size_t max_deg = 0, total = 0;
  for (NodeId v = 0; v < n; ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    total += g.degree(v);
  }
  const double mean = static_cast<double>(total) / n;
  EXPECT_GT(static_cast<double>(max_deg), 2.5 * mean);
}

TEST(Geometric, RespectsDensityAndRadius) {
  Rng rng(104);
  GeometricParams p;
  p.num_nodes = 100;
  p.density = 5.0;
  p.mean_degree = 5.0;
  GeometricGraph g = random_geometric(p, rng);
  EXPECT_EQ(g.graph.num_nodes(), 100u);
  EXPECT_NEAR(g.side, std::sqrt(100.0 / 5.0), 1e-12);
  EXPECT_NEAR(g.radius, std::sqrt(1.0 / std::numbers::pi), 1e-12);
  EXPECT_TRUE(is_connected(g.graph));
  // All positions inside the region.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(g.x[i], 0.0);
    EXPECT_LE(g.x[i], g.side);
    EXPECT_GE(g.y[i], 0.0);
    EXPECT_LE(g.y[i], g.side);
  }
}

TEST(Geometric, LinksRespectRadiusWhenNoStitching) {
  Rng rng(105);
  GeometricParams p;
  p.num_nodes = 60;
  p.density = 5.0;
  p.mean_degree = 8.0;  // dense enough to connect without stitching
  GeometricGraph g = random_geometric(p, rng);
  const double r2 = g.radius * g.radius + 1e-12;
  for (const Link& l : g.graph.links()) {
    const double dx = g.x[l.u] - g.x[l.v];
    const double dy = g.y[l.u] - g.y[l.v];
    EXPECT_LE(dx * dx + dy * dy, r2);
  }
}

TEST(Geometric, MeanDegreeIsInTheRightBallpark) {
  Rng rng(106);
  GeometricParams p;
  p.num_nodes = 100;
  double total = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    GeometricGraph g = random_geometric(p, rng);
    for (NodeId v = 0; v < 100; ++v) total += g.graph.degree(v);
  }
  const double mean = total / 500.0;
  // Boundary effects pull below 5; connectivity stitching pushes up.
  EXPECT_GT(mean, 3.0);
  EXPECT_LT(mean, 7.5);
}

TEST(Isp, ShapeAndConnectivity) {
  Rng rng(107);
  IspParams p;
  Graph g = isp_topology(p, rng);
  EXPECT_EQ(g.num_nodes(), p.num_backbone + p.num_access);
  EXPECT_TRUE(is_connected(g));
  // Backbone nodes should carry the hubs.
  std::size_t best = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v)
    if (g.degree(v) > g.degree(best)) best = v;
  EXPECT_LT(best, p.num_backbone);
}

TEST(Isp, AccessRoutersAreSingleOrDualHomed) {
  Rng rng(108);
  IspParams p;
  Graph g = isp_topology(p, rng);
  for (NodeId v = p.num_backbone; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 1u);
    EXPECT_LE(g.degree(v), 2u);
    for (const Adjacent& a : g.neighbors(v))
      EXPECT_LT(a.neighbor, p.num_backbone);  // uplinks go to the backbone
  }
}

TEST(Isp, As1221PresetIsDeterministic) {
  Graph a = as1221_like();
  Graph b = as1221_like();
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_links(), b.num_links());
  for (std::size_t i = 0; i < a.num_links(); ++i) {
    EXPECT_EQ(a.link(i).u, b.link(i).u);
    EXPECT_EQ(a.link(i).v, b.link(i).v);
  }
  // Rocketfuel-scale: ~100 routers, ~150 links.
  EXPECT_GT(a.num_nodes(), 80u);
  EXPECT_GT(a.num_links(), 100u);
}

}  // namespace
}  // namespace scapegoat
