// Tests for BFS traversal utilities.

#include "graph/traversal.hpp"

#include <gtest/gtest.h>

#include "topology/generators.hpp"

namespace scapegoat {
namespace {

TEST(BfsDistances, ChainGraph) {
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(2, 3);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(BfsDistances, DisconnectedNodeIsUnreachable) {
  Graph g(3);
  g.add_link(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(BfsDistances, AvoidingBlocksPath) {
  // 0-1-2 and 0-3-4-2: blocking 1 forces the long way.
  Graph g(5);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(0, 3);
  g.add_link(3, 4);
  g.add_link(4, 2);
  EXPECT_EQ(bfs_distances(g, 0)[2], 2u);
  EXPECT_EQ(bfs_distances_avoiding(g, 0, {1})[2], 3u);
  // Blocking both cuts node 2 off entirely.
  EXPECT_EQ(bfs_distances_avoiding(g, 0, {1, 4})[2], kUnreachable);
}

TEST(BfsDistances, BlockedSourceReachesNothing) {
  Graph g(2);
  g.add_link(0, 1);
  const auto d = bfs_distances_avoiding(g, 0, {0});
  EXPECT_EQ(d[0], kUnreachable);
  EXPECT_EQ(d[1], kUnreachable);
}

TEST(IsConnected, Various) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));  // two isolated nodes
  EXPECT_TRUE(is_connected(ring(5)));
  EXPECT_TRUE(is_connected(grid(3, 4)));
  Graph g(4);
  g.add_link(0, 1);
  g.add_link(2, 3);
  EXPECT_FALSE(is_connected(g));
}

TEST(ConnectedComponents, CountsAndLabels) {
  Graph g(6);
  g.add_link(0, 1);
  g.add_link(1, 2);
  g.add_link(3, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.component[0], c.component[2]);
  EXPECT_EQ(c.component[3], c.component[4]);
  EXPECT_NE(c.component[0], c.component[3]);
  EXPECT_NE(c.component[0], c.component[5]);
  EXPECT_NE(c.component[3], c.component[5]);
}

TEST(ConnectedComponents, SingleComponentGrid) {
  const Components c = connected_components(grid(4, 4));
  EXPECT_EQ(c.count, 1u);
  for (std::size_t id : c.component) EXPECT_EQ(id, 0u);
}

}  // namespace
}  // namespace scapegoat
