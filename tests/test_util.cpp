// Tests for RNG, statistics and table utilities.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace scapegoat {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(5), b(5);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    const int v = rng.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(8);
  auto s = rng.sample_without_replacement(10, 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (std::size_t v : s) EXPECT_LT(v, 10u);
  // k ≥ n returns everything.
  auto all = rng.sample_without_replacement(3, 7);
  EXPECT_EQ(all.size(), 3u);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.sum, 10.0);
  EXPECT_NEAR(s.stddev, 1.29099, 1e-4);
}

TEST(Stats, EmptySummaryIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Percentiles) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(Stats, RatioAndWilson) {
  EXPECT_DOUBLE_EQ(ratio(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(ratio(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(wilson_halfwidth(0, 0), 0.0);
  // Half-width shrinks with more trials.
  EXPECT_GT(wilson_halfwidth(5, 10), wilson_halfwidth(500, 1000));
  // And is within (0, 0.5] for nondegenerate inputs.
  const double hw = wilson_halfwidth(5, 10);
  EXPECT_GT(hw, 0.0);
  EXPECT_LE(hw, 0.5);
}

TEST(Table, AlignedPrinting) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace scapegoat
