// scapegoat_cli — command-line driver over the library.
//
//   scapegoat_cli topo    --topology wireline --seed 3 --dump
//   scapegoat_cli attack  --topology fig1 --strategy chosen --victim 10
//   scapegoat_cli attack  --topology wireless --strategy max --attackers 4,17
//   scapegoat_cli detect  --topology wireline --strategy obfuscation
//   scapegoat_cli fig     --n 4
//
// Topologies: fig1 | wireline | wireless | file:<edge-list path>.
// Strategies: chosen (needs --victim, 1-based link id) | max | obfuscation.
// Common flags: --seed N, --attackers a,b,c (node ids; default: Fig. 1's
// B,C or 2 random nodes), --redundant N, --alpha MS, --csv.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "core/resilience_flags.hpp"
#include "core/scapegoat.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "robust/watchdog.hpp"
#include "service/session.hpp"
#include "util/args.hpp"
#include "util/atomic_file.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace scapegoat;

int usage(const char* reason) {
  if (reason) std::cerr << "error: " << reason << "\n\n";
  std::cerr <<
      "usage: scapegoat_cli <command> [flags]\n"
      "  topo    — generate/inspect a topology (--dump prints an edge list)\n"
      "  attack  — run a scapegoating strategy and print the link table\n"
      "  detect  — attack + Eq. 23 detection + localization\n"
      "  fig     — reproduce a paper figure (--n 2|4|5|6)\n"
      "  faults  — probe-loss sweep through the degraded pipeline\n"
      "            (--rates permille list, --trials N, --retries N)\n"
      "  metrics — run an instrumented workload and print the metrics\n"
      "            registry (--trials N, --format table|json|csv)\n"
      "  ablate-defender — detection trade-off curves, least squares vs\n"
      "            sparse recovery on the same attacks (DESIGN.md §14)\n"
      "            (--topology wireline|wireless --topologies N --trials N\n"
      "             --clean-trials N --k a,b,c --eps e1,e2 --families\n"
      "             unrestricted,consistent,sparse-aware --alpha MS\n"
      "             --noise MS --anomaly MS --attack-eps MS --out PATH)\n"
      "  ablate-loss — loss-domain grey-hole grid, multicast MLE vs least\n"
      "            squares on the same ground truth (DESIGN.md §15)\n"
      "            (--topology wireline|wireless --topologies N --trials N\n"
      "             --clean-trials N --probes N --receivers N\n"
      "             --rates permille list --families\n"
      "             subtree_framing,split_framing --probe-mode\n"
      "             unicast|multicast --mle-alpha P --ls-alpha X\n"
      "             --min-delivery permille --out PATH)\n"
      "  serve   — streaming probe-ingest session: bounded queues, shards,\n"
      "            online Eq. 23 windows, supervised restart\n"
      "            (--topologies N --shards N --batches N --producers N\n"
      "             --capacity N --high-water N --shed off|auto|pinned\n"
      "             --shed-permille N --window N --stride N --alpha MS\n"
      "             --attack-every N --noise MS --grow-every N --open-loop\n"
      "             --batch-budget-ms MS --journal PATH --resume)\n"
      "flags: --topology fig1|wireline|wireless|file:PATH  --seed N\n"
      "       --estimator ls|sparse|mle  --epsilon MS (sparse defender ε)\n"
      "       --strategy chosen|max|obfuscation  --victim L(1-based)\n"
      "       --attackers a,b,c  --redundant N  --alpha MS  --csv\n"
      "       --stealthy (Theorem-1 consistent manipulation)\n"
      "       --save PATH / --load PATH (scenario persistence)\n"
      "       --threads N (worker threads for linalg/experiments; "
      "absent = auto)\n"
      "       --trace PATH (write a JSONL trace of spans for any command)\n"
      "crash safety (faults/metrics): --checkpoint PATH  --resume\n"
      "       --trial-budget-ms MS (quarantine trials exceeding the budget)\n"
      "       --stop-after N (stop resumably after N new trials)\n"
      "       SIGINT/SIGTERM stop at the next block boundary with the\n"
      "       journal flushed; rerun with --resume to continue.\n";
  return 2;
}

struct Setup {
  Scenario scenario;
  std::vector<NodeId> attackers;
};

std::optional<Setup> build_setup(ArgParser& args) {
  const std::string topo = args.get_string("topology", "fig1");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto redundant =
      static_cast<std::size_t>(args.get_int("redundant", 8));
  Rng rng(seed);

  // Which defender the deployment runs (DESIGN.md §14). --load keeps the
  // estimator the file recorded.
  ScenarioConfig config;
  const std::string estimator = args.get_string("estimator", "ls");
  if (estimator == "sparse") {
    config.estimator_kind = EstimatorKind::kSparseRecovery;
    config.sparse_epsilon_ms = args.get_double("epsilon", 0.0);
  } else if (estimator == "mle") {
    config.estimator_kind = EstimatorKind::kMulticastMle;
  } else if (estimator != "ls") {
    std::cerr << "error: --estimator expects ls|sparse|mle\n";
    return std::nullopt;
  }

  std::optional<Scenario> scenario;
  std::vector<NodeId> default_attackers;
  if (const std::string load = args.get_string("load"); !load.empty()) {
    scenario = load_scenario_file(load);
    if (!scenario) {
      std::cerr << "error: cannot load scenario from " << load << '\n';
      return std::nullopt;
    }
  } else if (topo == "fig1") {
    scenario = Scenario::fig1(rng, config);
    default_attackers = fig1_network().attackers;
  } else if (topo == "wireline") {
    scenario = make_scenario(TopologyKind::kWireline, rng, config,
                             redundant);
  } else if (topo == "wireless") {
    scenario = make_scenario(TopologyKind::kWireless, rng, config,
                             redundant);
  } else if (topo.rfind("file:", 0) == 0) {
    auto loaded = load_edge_list_file(topo.substr(5));
    if (!loaded) {
      std::cerr << "error: cannot load edge list from " << topo.substr(5)
                << '\n';
      return std::nullopt;
    }
    scenario = Scenario::from_graph(std::move(loaded->graph), rng,
                                    config, redundant);
  } else {
    std::cerr << "error: unknown topology '" << topo << "'\n";
    return std::nullopt;
  }
  if (!scenario) {
    std::cerr << "error: could not build an identifiable scenario\n";
    return std::nullopt;
  }

  std::vector<NodeId> attackers;
  for (long v : args.get_int_list("attackers")) {
    if (v < 0 || static_cast<std::size_t>(v) >= scenario->graph().num_nodes()) {
      std::cerr << "error: attacker node " << v << " out of range\n";
      return std::nullopt;
    }
    attackers.push_back(static_cast<NodeId>(v));
  }
  if (attackers.empty()) {
    attackers = default_attackers;
    if (attackers.empty()) {
      const auto draw =
          rng.sample_without_replacement(scenario->graph().num_nodes(), 2);
      attackers.assign(draw.begin(), draw.end());
    }
  }
  if (const std::string save = args.get_string("save"); !save.empty()) {
    if (!save_scenario_file(save, *scenario)) {
      std::cerr << "error: cannot write scenario to " << save << '\n';
      return std::nullopt;
    }
    std::cerr << "scenario saved to " << save << '\n';
  }
  return Setup{std::move(*scenario), std::move(attackers)};
}

void print_attack_table(const Setup& setup, const AttackResult& r,
                        bool csv) {
  Table t({"link", "true_ms", "estimated_ms", "state"});
  for (LinkId l = 0; l < setup.scenario.x_true().size(); ++l) {
    t.add_row({std::to_string(l + 1),
               Table::num(setup.scenario.x_true()[l]),
               Table::num(r.x_estimated[l]), to_string(r.states[l])});
  }
  if (csv) {
    std::cout << t.to_csv();
  } else {
    t.print(std::cout);
  }
}

AttackResult run_strategy(ArgParser& args, const Setup& setup) {
  const std::string strategy = args.get_string("strategy", "max");
  // --stealthy: use the Theorem-1 consistent construction (undetectable by
  // Eq. 23; feasible essentially only under perfect cuts).
  const ManipulationMode mode = args.get_bool("stealthy")
                                    ? ManipulationMode::kConsistent
                                    : ManipulationMode::kUnrestricted;
  AttackContext ctx = setup.scenario.context(setup.attackers);
  if (strategy == "chosen") {
    const long victim = args.get_int("victim", 0);
    if (victim < 1 ||
        static_cast<std::size_t>(victim) > setup.scenario.graph().num_links()) {
      std::cerr << "error: --victim must be a 1-based link id\n";
      return {};
    }
    return chosen_victim_attack(ctx, {static_cast<LinkId>(victim - 1)}, mode,
                                CollateralPolicy::kAvoidAbnormal);
  }
  if (strategy == "max") {
    MaxDamageOptions opt;
    opt.mode = mode;
    opt.collateral = CollateralPolicy::kAvoidAbnormal;
    return max_damage_attack(ctx, opt).best;
  }
  if (strategy == "obfuscation") {
    ObfuscationOptions opt;
    opt.mode = mode;
    opt.min_victims = 1;
    return obfuscation_attack(ctx, opt);
  }
  std::cerr << "error: unknown strategy '" << strategy << "'\n";
  return {};
}

int cmd_topo(ArgParser& args) {
  auto setup = build_setup(args);
  if (!setup) return 1;
  const Graph& g = setup->scenario.graph();
  if (args.get_bool("dump")) {
    write_edge_list(std::cout, g);
    return 0;
  }
  std::cout << g.to_string() << '\n'
            << "monitors: " << setup->scenario.monitors().size()
            << "  measurement paths: "
            << setup->scenario.estimator().num_paths() << "  (rank "
            << setup->scenario.estimator().num_links() << ")\n"
            << "max node presence ratio: "
            << Table::num(max_presence_ratio(
                              g, setup->scenario.estimator().paths()),
                          3)
            << '\n';
  if (auto cond = estimate_condition(setup->scenario.estimator().r())) {
    std::cout << "routing-matrix condition number: "
              << Table::num(cond->condition(), 1)
              << "  (higher = more attacker leverage via R⁺)\n";
  }
  return 0;
}

int cmd_attack(ArgParser& args) {
  auto setup = build_setup(args);
  if (!setup) return 1;
  const AttackResult r = run_strategy(args, *setup);
  if (!r.success) {
    std::cout << "attack infeasible (" << lp::to_string(r.status) << ")\n";
    return 0;
  }
  std::cout << "attackers:";
  for (NodeId a : setup->attackers) std::cout << ' ' << a;
  std::cout << "\nvictims (1-based links):";
  for (LinkId v : r.victims) std::cout << ' ' << (v + 1);
  std::cout << "\ndamage ‖m‖₁: " << Table::num(r.damage) << " ms\n\n";
  print_attack_table(*setup, r, args.get_bool("csv"));
  return 0;
}

int cmd_detect(ArgParser& args) {
  auto setup = build_setup(args);
  if (!setup) return 1;
  const AttackResult r = run_strategy(args, *setup);
  if (!r.success) {
    std::cout << "attack infeasible — nothing to detect\n";
    return 0;
  }
  DetectorOptions det;
  det.alpha = args.get_double("alpha", 200.0);
  const DetectionOutcome d = detect_scapegoating(
      setup->scenario.estimator(), r.y_observed, det);
  const bool perfect = is_perfect_cut(setup->scenario.estimator().paths(),
                                      setup->attackers, r.victims);
  std::cout << "cut: " << (perfect ? "perfect" : "imperfect")
            << "   residual: " << Table::num(d.residual_norm1)
            << " ms   verdict: "
            << (d.detected ? "MANIPULATED" : "consistent") << '\n';
  LocalizationOptions lopt;
  lopt.alpha = det.alpha;
  const LocalizationResult loc = localize_manipulation(
      setup->scenario.estimator(), r.y_observed, lopt);
  std::cout << "localization: " << loc.suspicious_paths.size()
            << " paths flagged"
            << (loc.clean ? ", consistency restored" : "") << '\n';
  return 0;
}

int cmd_fig(ArgParser& args) {
  switch (args.get_int("n", 4)) {
    case 2:
      print_fig2(run_fig2(), std::cout);
      return 0;
    case 4:
      print_fig4(run_fig4(), std::cout);
      return 0;
    case 5:
      print_fig5(run_fig5(), std::cout);
      return 0;
    case 6:
      print_fig6(run_fig6(), std::cout);
      return 0;
    default:
      std::cerr << "only figures 2, 4, 5, 6 run instantly; use the "
                   "bench_fig7/8/9 binaries for the Monte-Carlo figures\n";
      return 2;
  }
}

// Measurement-plane fault sweep: honest network, faulty probes, degraded
// estimation/detection. Structured per-cell statuses, never a crash —
// the CLI face of core/fault_experiment (bench_fault_tolerance is the
// full harness with checksums).
int cmd_faults(ArgParser& args) {
  FaultSweepOptions opt;
  opt.topologies = static_cast<std::size_t>(args.get_int("topologies", 1));
  opt.trials_per_topology =
      static_cast<std::size_t>(args.get_int("trials", 20));
  args.apply_execution(opt);
  opt.alpha = args.get_double("alpha", 200.0);
  opt.retry.max_retries = static_cast<std::size_t>(args.get_int("retries", 2));
  apply_resilience_flags(args, opt.resilience);
  if (const std::vector<long> permille = args.get_int_list("rates");
      !permille.empty()) {
    opt.loss_rates.clear();
    for (long r : permille) opt.loss_rates.push_back(r / 1000.0);
  }
  const std::string topo = args.get_string("topology", "wireline");
  const TopologyKind kind =
      topo == "wireless" ? TopologyKind::kWireless : TopologyKind::kWireline;

  const FaultSweepSeries series = run_fault_sweep(kind, opt);
  Table table({"loss_rate", "trials", "full_rank", "fallback", "unsolvable",
               "measured_frac", "mean_err_ms", "alarms"});
  for (const FaultSweepCell& c : series.cells) {
    table.add_row({Table::num(c.loss_rate, 3), std::to_string(c.trials),
                   std::to_string(c.full_rank), std::to_string(c.fallback),
                   std::to_string(c.unsolvable),
                   Table::num(c.measured_fraction(), 3),
                   Table::num(c.mean_abs_error_ms, 3),
                   std::to_string(c.alarms)});
  }
  std::cout << "fault sweep (" << to_string(kind) << ", honest network, "
            << opt.retry.attempts() << " probe attempts)\n";
  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  if (series.trials_quarantined > 0) {
    std::cout << "quarantined trials (excluded from all cells): "
              << series.trials_quarantined << '\n';
  }
  if (series.trials_replayed > 0) {
    std::cout << "trials replayed from checkpoint: " << series.trials_replayed
              << '\n';
  }
  if (series.interrupted) {
    std::cout << "sweep interrupted — partial results above; journal "
                 "flushed, rerun with --resume to continue\n";
  }
  return 0;
}

// Runs a representative instrumented workload — Monte-Carlo presence-ratio
// trials, which exercise the estimator's QR/pinv, the attack LPs and the
// detector — then prints the folded metrics registry. The registry is the
// one main() installed, so the printout also includes anything recorded
// before the command ran.
int cmd_metrics(ArgParser& args, obs::MetricsRegistry& registry) {
  PresenceRatioOptions opt;
  opt.topologies = 1;
  opt.trials_per_topology =
      static_cast<std::size_t>(args.get_int("trials", 20));
  args.apply_execution(opt);
  apply_resilience_flags(args, opt.resilience);
  run_presence_ratio_experiment(TopologyKind::kWireline, opt);

  const obs::MetricsSnapshot snapshot = registry.snapshot();
  const std::string format = args.get_string("format", "table");
  if (format == "json") {
    std::cout << obs::to_json(snapshot) << '\n';
  } else if (format == "csv") {
    std::cout << obs::to_csv(snapshot);
  } else if (format == "table") {
    std::cout << obs::to_table(snapshot);
  } else {
    std::cerr << "error: --format expects table|json|csv\n";
    return 2;
  }
  return 0;
}

// Defender-choice ablation: the same attacks in front of the least-squares
// and sparse-recovery defenders, swept over anomaly sparsity k and the
// sparse defender's ε ball (core/defender_ablation.hpp).
int cmd_ablate_defender(ArgParser& args) {
  DefenderAblationOptions opt;
  const std::string topo = args.get_string("topology", "wireline");
  opt.kind =
      topo == "wireless" ? TopologyKind::kWireless : TopologyKind::kWireline;
  opt.topologies = static_cast<std::size_t>(args.get_int("topologies", 3));
  opt.trials_per_cell = static_cast<std::size_t>(args.get_int("trials", 12));
  opt.clean_trials =
      static_cast<std::size_t>(args.get_int("clean-trials", 8));
  args.apply_execution(opt);
  opt.alpha = args.get_double("alpha", 200.0);
  opt.noise_ms = args.get_double("noise", 1.0);
  opt.anomaly_delay_ms = args.get_double("anomaly", 900.0);
  opt.attack_epsilon_ms = args.get_double("attack-eps", 50.0);
  if (const std::vector<long> ks = args.get_int_list("k"); !ks.empty()) {
    opt.anomaly_sparsity.clear();
    for (long k : ks) opt.anomaly_sparsity.push_back(
        static_cast<std::size_t>(std::max(0L, k)));
  }
  if (const std::vector<long> eps = args.get_int_list("eps"); !eps.empty()) {
    opt.defender_epsilons_ms.clear();
    for (long e : eps) opt.defender_epsilons_ms.push_back(
        static_cast<double>(std::max(0L, e)));
  }
  if (const std::string fams = args.get_string("families"); !fams.empty()) {
    opt.families.clear();
    std::istringstream fs(fams);
    for (std::string name; std::getline(fs, name, ',');) {
      const std::optional<AttackFamily> f = attack_family_from_string(name);
      if (!f) {
        std::cerr << "error: unknown attack family '" << name << "'\n";
        return 2;
      }
      opt.families.push_back(*f);
    }
  }

  const AblationSeries series = run_defender_ablation(opt);

  std::vector<std::string> headers{"family", "k", "attacks", "ls_rate"};
  for (double e : series.epsilons)
    headers.push_back("sparse(eps=" + Table::num(e, 0) + ")");
  headers.push_back("ls_only");
  headers.push_back("sparse_only");
  Table table(headers);
  for (const AblationCell& c : series.cells) {
    std::vector<std::string> row{to_string(c.family),
                                 std::to_string(c.sparsity),
                                 std::to_string(c.attacks),
                                 Table::num(c.ls_rate(), 3)};
    std::size_t ls_only = 0, sparse_only = 0;
    for (std::size_t e = 0; e < series.epsilons.size(); ++e) {
      row.push_back(Table::num(c.sparse_rate(e), 3));
      ls_only = std::max(ls_only, c.ls_only[e]);
      sparse_only = std::max(sparse_only, c.sparse_only[e]);
    }
    row.push_back(std::to_string(ls_only));
    row.push_back(std::to_string(sparse_only));
    table.add_row(std::move(row));
  }
  std::cout << "defender ablation (" << to_string(opt.kind) << ", "
            << opt.topologies << " topologies, " << opt.trials_per_cell
            << " trials/cell, attack ε " << Table::num(opt.attack_epsilon_ms)
            << " ms, α " << Table::num(opt.alpha) << " ms)\n";
  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  std::cout << "clean trials " << series.clean_trials << ": LS false alarms "
            << series.ls_false_alarms;
  for (std::size_t e = 0; e < series.epsilons.size(); ++e)
    std::cout << ", sparse(ε=" << Table::num(series.epsilons[e], 0) << ") "
              << series.sparse_false_alarms[e];
  std::cout << '\n';

  if (const std::string out = args.get_string("out"); !out.empty()) {
    std::ostringstream json;
    json << "{\n  \"kind\": \"" << to_string(series.kind)
         << "\",\n  \"epsilons_ms\": [";
    for (std::size_t e = 0; e < series.epsilons.size(); ++e)
      json << (e ? ", " : "") << series.epsilons[e];
    json << "],\n  \"clean_trials\": " << series.clean_trials
         << ",\n  \"ls_false_alarms\": " << series.ls_false_alarms
         << ",\n  \"sparse_false_alarms\": [";
    for (std::size_t e = 0; e < series.sparse_false_alarms.size(); ++e)
      json << (e ? ", " : "") << series.sparse_false_alarms[e];
    json << "],\n  \"cells\": [\n";
    for (std::size_t i = 0; i < series.cells.size(); ++i) {
      const AblationCell& c = series.cells[i];
      json << "    {\"family\": \"" << to_string(c.family)
           << "\", \"k\": " << c.sparsity << ", \"attacks\": " << c.attacks
           << ", \"ls_detected\": " << c.ls_detected
           << ", \"sparse_detected\": [";
      for (std::size_t e = 0; e < c.sparse_detected.size(); ++e)
        json << (e ? ", " : "") << c.sparse_detected[e];
      json << "], \"ls_only\": [";
      for (std::size_t e = 0; e < c.ls_only.size(); ++e)
        json << (e ? ", " : "") << c.ls_only[e];
      json << "], \"sparse_only\": [";
      for (std::size_t e = 0; e < c.sparse_only.size(); ++e)
        json << (e ? ", " : "") << c.sparse_only[e];
      json << "]}" << (i + 1 < series.cells.size() ? "," : "") << '\n';
    }
    json << "  ]\n}\n";
    if (!write_file_atomic(out, json.str()).ok()) {
      std::cerr << "error: cannot write " << out << '\n';
      return 1;
    }
    std::cerr << "ablation series written to " << out << '\n';
  }
  return 0;
}

// Loss-domain ablation: the grey-hole grid in front of the multicast-MLE
// and least-squares defenders over the same ground truth
// (core/defender_ablation.hpp, run_loss_ablation).
int cmd_ablate_loss(ArgParser& args) {
  LossAblationOptions opt;
  const std::string topo = args.get_string("topology", "wireline");
  opt.kind =
      topo == "wireless" ? TopologyKind::kWireless : TopologyKind::kWireline;
  opt.topologies = static_cast<std::size_t>(args.get_int("topologies", 3));
  opt.trials_per_cell = static_cast<std::size_t>(args.get_int("trials", 8));
  opt.clean_trials =
      static_cast<std::size_t>(args.get_int("clean-trials", 8));
  opt.probes = static_cast<std::size_t>(args.get_int("probes", 4000));
  opt.receivers = static_cast<std::size_t>(args.get_int("receivers", 5));
  args.apply_execution(opt);
  opt.mle_alpha = args.get_double("mle-alpha", 0.05);
  opt.ls_alpha = args.get_double("ls-alpha", 0.5);
  opt.min_link_delivery =
      static_cast<double>(args.get_int("min-delivery", 985)) / 1000.0;
  if (const std::vector<long> rates = args.get_int_list("rates");
      !rates.empty()) {
    opt.drop_rates.clear();
    for (long r : rates)
      opt.drop_rates.push_back(static_cast<double>(r) / 1000.0);
  }
  if (const std::string mode = args.get_string("probe-mode");
      !mode.empty()) {
    const std::optional<simnet::ProbeMode> pm =
        simnet::probe_mode_from_string(mode);
    if (!pm) {
      std::cerr << "error: --probe-mode expects unicast|multicast\n";
      return 2;
    }
    opt.probe_mode = *pm;
  }
  if (const std::string fams = args.get_string("families"); !fams.empty()) {
    opt.families.clear();
    std::istringstream fs(fams);
    for (std::string name; std::getline(fs, name, ',');) {
      const std::optional<LossAttackFamily> f =
          loss_attack_family_from_string(name);
      if (!f) {
        std::cerr << "error: unknown loss attack family '" << name << "'\n";
        return 2;
      }
      opt.families.push_back(*f);
    }
  }

  const LossAblationSeries series = run_loss_ablation(opt);

  Table table({"family", "drop_rate", "attacks", "blamed", "mle_rate",
               "ls_rate", "mle_only", "ls_only"});
  for (const LossAblationCell& c : series.cells)
    table.add_row({to_string(c.family), Table::num(c.drop_rate, 2),
                   std::to_string(c.attacks), std::to_string(c.victim_blamed),
                   Table::num(c.mle_rate(), 3), Table::num(c.ls_rate(), 3),
                   std::to_string(c.mle_only), std::to_string(c.ls_only)});
  std::cout << "loss-domain ablation (" << to_string(opt.kind) << ", "
            << to_string(opt.probe_mode) << " probes, " << opt.topologies
            << " topologies, " << opt.trials_per_cell << " trials/cell, "
            << opt.probes << " probes/trial, MLE α "
            << Table::num(opt.mle_alpha, 3) << ", LS α "
            << Table::num(opt.ls_alpha, 2) << ")\n";
  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  std::cout << "clean trials " << series.clean_trials
            << ": MLE false alarms " << series.mle_false_alarms
            << ", LS false alarms " << series.ls_false_alarms << '\n';

  if (const std::string out = args.get_string("out"); !out.empty()) {
    std::ostringstream json;
    json << "{\n  \"kind\": \"" << to_string(series.kind)
         << "\",\n  \"probe_mode\": \"" << to_string(series.probe_mode)
         << "\",\n  \"clean_trials\": " << series.clean_trials
         << ",\n  \"mle_false_alarms\": " << series.mle_false_alarms
         << ",\n  \"ls_false_alarms\": " << series.ls_false_alarms
         << ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < series.cells.size(); ++i) {
      const LossAblationCell& c = series.cells[i];
      json << "    {\"family\": \"" << to_string(c.family)
           << "\", \"drop_rate\": " << c.drop_rate
           << ", \"attacks\": " << c.attacks
           << ", \"victim_blamed\": " << c.victim_blamed
           << ", \"mle_detected\": " << c.mle_detected
           << ", \"ls_detected\": " << c.ls_detected
           << ", \"mle_only\": " << c.mle_only
           << ", \"ls_only\": " << c.ls_only << "}"
           << (i + 1 < series.cells.size() ? "," : "") << '\n';
    }
    json << "  ]\n}\n";
    if (!write_file_atomic(out, json.str()).ok()) {
      std::cerr << "error: cannot write " << out << '\n';
      return 1;
    }
    std::cerr << "loss ablation series written to " << out << '\n';
  }
  return 0;
}

// Streaming probe-ingest session: the service face of DESIGN.md §13.
// SIGTERM/SIGINT drain gracefully — the supervisor closes admissions, the
// shards finish the queued backlog with journals flushed, and the session
// reports partial accounting (rerun with --journal/--resume to continue).
int cmd_serve(ArgParser& args) {
  service::SessionWorkload workload;
  const std::string topo = args.get_string("topology", "wireline");
  workload.kind =
      topo == "wireless" ? TopologyKind::kWireless : TopologyKind::kWireline;
  workload.topologies =
      static_cast<std::size_t>(args.get_int("topologies", 2));
  workload.scenario_seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  workload.producers = static_cast<std::size_t>(args.get_int("producers", 2));
  workload.closed_loop = !args.get_bool("open-loop");
  workload.load.seed = derive_seed(workload.scenario_seed, 0x10adull);
  workload.load.batches_per_topology =
      static_cast<std::uint64_t>(args.get_int("batches", 256));
  workload.load.noise_ms = args.get_double("noise", 1.0);
  workload.load.attack_every =
      static_cast<std::uint64_t>(args.get_int("attack-every", 0));
  workload.load.attack_delay_ms = args.get_double("attack-delay", 500.0);
  workload.load.growth.every =
      static_cast<std::size_t>(args.get_int("grow-every", 0));

  service::ServiceOptions opt;
  opt.shards = static_cast<std::size_t>(args.get_int("shards", 2));
  opt.queue_capacity =
      static_cast<std::size_t>(args.get_int("capacity", 1024));
  opt.high_water = static_cast<std::size_t>(
      args.get_int("high-water",
                   static_cast<long>(opt.queue_capacity * 3 / 4)));
  const std::string shed = args.get_string("shed", "auto");
  if (shed == "off") {
    opt.shed.mode = service::ShedPolicy::Mode::kOff;
  } else if (shed == "pinned") {
    opt.shed.mode = service::ShedPolicy::Mode::kPinned;
  } else if (shed == "auto") {
    opt.shed.mode = service::ShedPolicy::Mode::kAuto;
  } else {
    std::cerr << "error: --shed expects off|auto|pinned\n";
    return 2;
  }
  opt.shed.seed = workload.scenario_seed;
  opt.shed.permille =
      static_cast<std::uint32_t>(args.get_int("shed-permille", 125));
  opt.window = static_cast<std::size_t>(args.get_int("window", 8));
  opt.stride =
      static_cast<std::size_t>(args.get_int("stride",
                                            static_cast<long>(opt.window)));
  opt.alpha_ms = args.get_double("alpha", 200.0);
  opt.batch_budget_ms = args.get_double("batch-budget-ms", 0.0);
  opt.journal_path = args.get_string("journal");
  opt.resume = args.get_bool("resume");
  opt.seed = workload.scenario_seed;
  opt.growth = workload.load.growth;

  const auto report = service::run_service_session(workload, opt);
  if (!report.ok()) {
    std::cerr << "error: " << report.error_message() << '\n';
    return 1;
  }
  const service::SessionReport& r = report.value();
  const service::ServiceStats& s = r.stats;
  std::cout << "streaming session (" << to_string(workload.kind) << ", "
            << workload.topologies << " topologies, " << opt.shards
            << " shards, shed " << to_string(opt.shed.mode) << ", "
            << (workload.closed_loop ? "closed" : "open") << " loop)\n"
            << "state: " << to_string(r.final_state)
            << (r.interrupted ? "   (interrupted — drained gracefully)"
                              : "")
            << '\n'
            << "offered " << s.offered << "  admitted " << s.admitted
            << "  rejected " << s.rejected << "  shed " << s.shed
            << "  closed " << s.closed << '\n'
            << "processed " << s.processed << "  duplicates " << s.duplicates
            << "  malformed " << s.malformed << "  quarantined "
            << s.quarantined << "  lost-in-flight " << s.lost_in_flight()
            << '\n'
            << "probes " << r.probes_offered << "  max queue depth "
            << s.max_queue_depth << "/" << opt.queue_capacity
            << "  shard restarts " << s.restarts << '\n';
  Table table({"topology", "windows", "alarms", "last_mean_ms", "verdict"});
  for (std::size_t t = 0; t < r.windows_by_topology.size(); ++t) {
    const auto& windows = r.windows_by_topology[t];
    std::size_t alarms = 0;
    for (const service::WindowDecision& d : windows) alarms += d.alarm;
    table.add_row(
        {std::to_string(t), std::to_string(windows.size()),
         std::to_string(alarms),
         windows.empty() ? "-" : Table::num(windows.back().mean_residual_ms),
         alarms > 0 ? "MANIPULATED" : "consistent"});
  }
  if (args.get_bool("csv")) {
    std::cout << table.to_csv();
  } else {
    table.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.command()) return usage("missing command");
  ThreadPool::set_global_threads(args.get_threads());
  const std::string& cmd = *args.command();

  // SIGINT/SIGTERM become a cooperative stop request: experiment runners
  // finish the current block, flush their checkpoint journal and return
  // with `interrupted` set, so ^C never loses journaled work.
  robust::install_graceful_shutdown();

  // Observability: every command runs instrumented when asked. `--trace
  // PATH` streams spans as JSONL into PATH.partial, published to PATH by
  // rename on exit — readers never see a file that is still growing, and a
  // crash leaves the .partial for inspection instead of a torn PATH.
  obs::MetricsRegistry registry;
  std::ofstream trace_file;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  const std::string trace_path = args.get_string("trace");
  const std::string trace_partial =
      trace_path.empty() ? "" : trace_path + ".partial";
  if (!trace_path.empty()) {
    trace_file.open(trace_partial);
    if (!trace_file) {
      std::cerr << "error: cannot open trace file " << trace_partial << '\n';
      return 2;
    }
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_file);
  }
  std::unique_ptr<obs::ScopedInstrumentation> instrumentation;
  if (trace_sink != nullptr || cmd == "metrics") {
    instrumentation = std::make_unique<obs::ScopedInstrumentation>(
        registry, trace_sink.get());
  }

  int rc;
  if (cmd == "topo") {
    rc = cmd_topo(args);
  } else if (cmd == "attack") {
    rc = cmd_attack(args);
  } else if (cmd == "detect") {
    rc = cmd_detect(args);
  } else if (cmd == "fig") {
    rc = cmd_fig(args);
  } else if (cmd == "faults") {
    rc = cmd_faults(args);
  } else if (cmd == "metrics") {
    rc = cmd_metrics(args, registry);
  } else if (cmd == "ablate-defender") {
    rc = cmd_ablate_defender(args);
  } else if (cmd == "ablate-loss") {
    rc = cmd_ablate_loss(args);
  } else if (cmd == "serve") {
    rc = cmd_serve(args);
  } else {
    return usage(("unknown command '" + cmd + "'").c_str());
  }

  const bool interrupted = robust::shutdown_requested();
  if (interrupted) {
    // Graceful-shutdown epilogue: the runners already flushed their
    // journals; dump the metrics gathered so far so the session's telemetry
    // survives alongside the checkpoint.
    if (instrumentation != nullptr)
      std::cerr << obs::to_table(registry.snapshot());
    std::cerr << "interrupted by signal — state is resumable (--resume)\n";
  }

  instrumentation.reset();
  trace_sink.reset();
  if (!trace_path.empty()) {
    trace_file.close();
    if (std::rename(trace_partial.c_str(), trace_path.c_str()) != 0)
      std::cerr << "warning: trace left at " << trace_partial << '\n';
  }

  for (const std::string& err : args.errors())
    std::cerr << "warning: " << err << '\n';
  for (const std::string& flag : args.unused())
    std::cerr << "warning: unused flag --" << flag << '\n';
  return interrupted ? 130 : rc;
}
